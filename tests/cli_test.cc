#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace mbi {
namespace {

/// End-to-end tests of the `mbi` command-line tool, driving the real binary
/// (path injected by CMake as MBI_CLI_PATH).

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  std::string command = std::string(MBI_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult result;
  std::array<char, 4096> buffer;
  size_t read;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(RunCli("--help").exit_code, 0);
  CommandResult unknown = RunCli("frobnicate");
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_NE(unknown.output.find("unknown command"), std::string::npos);
  EXPECT_EQ(RunCli("").exit_code, 2);
}

TEST(CliTest, FullPipeline) {
  std::string db = TempPath("cli_pipeline.mbid");
  std::string index = TempPath("cli_pipeline.mbst");

  CommandResult generate = RunCli(
      "generate --out " + db +
      " --transactions 5000 --universe 300 --itemsets 100 --seed 7");
  ASSERT_EQ(generate.exit_code, 0) << generate.output;
  EXPECT_NE(generate.output.find("5000 transactions"), std::string::npos);

  CommandResult build =
      RunCli("build --db " + db + " --out " + index + " --cardinality 10");
  ASSERT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("K=10"), std::string::npos);

  CommandResult query = RunCli("query --db " + db + " --index " + index +
                            " --k 3 --similarity cosine");
  ASSERT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("top-3 by cosine"), std::string::npos);
  EXPECT_NE(query.output.find("provably exact"), std::string::npos);

  CommandResult range = RunCli("query --db " + db + " --index " + index +
                            " --similarity cosine --range 0.7");
  ASSERT_EQ(range.exit_code, 0) << range.output;
  EXPECT_NE(range.output.find("range query cosine >= 0.7"),
            std::string::npos);

  CommandResult explicit_target =
      RunCli("query --db " + db + " --index " + index + " --items 1,2,3 --k 2");
  ASSERT_EQ(explicit_target.exit_code, 0) << explicit_target.output;
  EXPECT_NE(explicit_target.output.find("target: {1, 2, 3}"),
            std::string::npos);

  CommandResult checked_build = RunCli("build --db " + db + " --out " + index +
                                       " --cardinality 10 --check_invariants");
  ASSERT_EQ(checked_build.exit_code, 0) << checked_build.output;
  EXPECT_NE(checked_build.output.find("index invariants verified"),
            std::string::npos);

  CommandResult checked_query =
      RunCli("query --db " + db + " --index " + index +
             " --k 3 --similarity match_ratio --check_invariants");
  ASSERT_EQ(checked_query.exit_code, 0) << checked_query.output;
  EXPECT_NE(
      checked_query.output.find("index invariants and bound dominance"),
      std::string::npos);

  CommandResult stats = RunCli("stats --db " + db + " --index " + index);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("signature cardinality K: 10"),
            std::string::npos);

  CommandResult mine = RunCli("mine --db " + db + " --min_support 0.02");
  ASSERT_EQ(mine.exit_code, 0) << mine.output;
  EXPECT_NE(mine.output.find("frequent itemsets"), std::string::npos);

  CommandResult bench = RunCli("bench --db " + db + " --index " + index +
                               " --queries 20 --termination 0.05");
  ASSERT_EQ(bench.exit_code, 0) << bench.output;
  EXPECT_NE(bench.output.find("latency:"), std::string::npos);
  EXPECT_NE(bench.output.find("p95="), std::string::npos);

  std::remove(db.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, ErrorsAreReported) {
  EXPECT_EQ(RunCli("build --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("query --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("stats --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("mine --db /no/such/file.mbid").exit_code, 1);

  // Malformed --items and out-of-universe items.
  std::string db = TempPath("cli_errors.mbid");
  std::string index = TempPath("cli_errors.mbst");
  ASSERT_EQ(RunCli("generate --out " + db +
                " --transactions 200 --universe 50 --itemsets 20")
                .exit_code,
            0);
  ASSERT_EQ(
      RunCli("build --db " + db + " --out " + index + " --cardinality 6")
          .exit_code,
      0);
  EXPECT_EQ(RunCli("query --db " + db + " --index " + index + " --items abc")
                .exit_code,
            1);
  EXPECT_EQ(RunCli("query --db " + db + " --index " + index + " --items 99999")
                .exit_code,
            1);
  std::remove(db.c_str());
  std::remove(index.c_str());
}

}  // namespace
}  // namespace mbi
