// Oracle-equivalence suite for the overhauled query hot path: the lazy
// entry-ordering / packed-kernel / context-reusing engine must return
// *bit-identical* NearestNeighborResults — neighbors, exactness certificate,
// bounds, tie-breaks, stats, and traces — to
//
//  (a) the frozen pre-overhaul implementation
//      (BranchAndBoundEngine::FindKNearest*Reference: full std::sort,
//      fresh allocations, merge-scan MatchAndHamming), and
//  (b) the SequentialScanner ground truth (for exact searches).
//
// The sweep covers all three paper similarity families, both entry sort
// orders, early termination, optimality gaps, trace collection, and the
// multi-target aggregate — precisely the behaviours whose semantics the
// overhaul promised to preserve.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

struct Fixture {
  TransactionDatabase db;
  SignatureTable table;
  std::vector<Transaction> queries;
};

Fixture MakeFixture(uint64_t seed, uint32_t cardinality,
                    int activation_threshold = 1, uint64_t db_size = 1500,
                    uint64_t num_queries = 10) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 70;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(db_size);
  IndexBuildConfig build;
  build.clustering.target_cardinality = cardinality;
  build.table.activation_threshold = activation_threshold;
  SignatureTable table = BuildIndex(db, build);
  auto queries = generator.GenerateQueries(num_queries);
  return {std::move(db), std::move(table), std::move(queries)};
}

/// Bit-identical doubles, treating equal infinities as equal (== already
/// does; the helper exists to give readable failure output for NaN-free
/// similarity values).
void ExpectSameDouble(double a, double b, const std::string& what) {
  EXPECT_EQ(a, b) << what;
}

void ExpectSameResult(const NearestNeighborResult& a,
                      const NearestNeighborResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << label;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id)
        << label << " neighbor " << i;
    ExpectSameDouble(a.neighbors[i].similarity, b.neighbors[i].similarity,
                     label + " similarity of neighbor " + std::to_string(i));
  }
  EXPECT_EQ(a.guaranteed_exact, b.guaranteed_exact) << label;
  ExpectSameDouble(a.unexplored_optimistic_bound, b.unexplored_optimistic_bound,
                   label + " unexplored_optimistic_bound");
  ExpectSameDouble(a.best_unscanned_bound, b.best_unscanned_bound,
                   label + " best_unscanned_bound");

  EXPECT_EQ(a.stats.database_size, b.stats.database_size) << label;
  EXPECT_EQ(a.stats.entries_total, b.stats.entries_total) << label;
  EXPECT_EQ(a.stats.entries_scanned, b.stats.entries_scanned) << label;
  EXPECT_EQ(a.stats.entries_pruned, b.stats.entries_pruned) << label;
  EXPECT_EQ(a.stats.entries_unexplored, b.stats.entries_unexplored) << label;
  EXPECT_EQ(a.stats.transactions_evaluated, b.stats.transactions_evaluated)
      << label;
  EXPECT_EQ(a.stats.io.pages_read, b.stats.io.pages_read) << label;
  EXPECT_EQ(a.stats.io.bytes_read, b.stats.io.bytes_read) << label;
  EXPECT_EQ(a.stats.io.transactions_fetched, b.stats.io.transactions_fetched)
      << label;

  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].coordinate, b.trace[i].coordinate)
        << label << " trace " << i;
    ExpectSameDouble(a.trace[i].optimistic_bound, b.trace[i].optimistic_bound,
                     label + " trace optimistic " + std::to_string(i));
    EXPECT_EQ(a.trace[i].transaction_count, b.trace[i].transaction_count)
        << label << " trace " << i;
    EXPECT_EQ(static_cast<int>(a.trace[i].action),
              static_cast<int>(b.trace[i].action))
        << label << " trace " << i;
    ExpectSameDouble(a.trace[i].pessimistic_bound, b.trace[i].pessimistic_bound,
                     label + " trace pessimistic " + std::to_string(i));
  }
}

// --- Full sweep: family x sort order x search-option shape. ---

struct OptionShape {
  const char* name;
  double max_access_fraction;
  double optimality_gap;
  bool collect_trace;
};

constexpr OptionShape kShapes[] = {
    {"exact", 1.0, 0.0, false},
    {"exact_trace", 1.0, 0.0, true},
    {"gap", 1.0, 0.08, false},
    {"terminate", 0.08, 0.0, false},
    {"terminate_trace", 0.08, 0.0, true},
    {"terminate_gap_trace", 0.3, 0.03, true},
};

class OracleEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, EntrySortOrder, size_t>> {};

TEST_P(OracleEquivalenceTest, OverhaulMatchesReferenceBitExactly) {
  auto [family_name, sort_order, k] = GetParam();
  Fixture fixture = MakeFixture(2024, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily(family_name);

  QueryContext context;  // One reused context across the whole sweep.
  for (const OptionShape& shape : kShapes) {
    SearchOptions options;
    options.sort_order = sort_order;
    options.max_access_fraction = shape.max_access_fraction;
    options.optimality_gap = shape.optimality_gap;
    options.collect_trace = shape.collect_trace;
    for (size_t q = 0; q < fixture.queries.size(); ++q) {
      const Transaction& target = fixture.queries[q];
      NearestNeighborResult reference =
          engine.FindKNearestReference(target, *family, k, options);
      NearestNeighborResult fresh =
          engine.FindKNearest(target, *family, k, options);
      NearestNeighborResult reused =
          engine.FindKNearest(target, *family, k, options, &context);
      std::string label = std::string(family_name) + "/" + shape.name +
                          "/k=" + std::to_string(k) +
                          "/q=" + std::to_string(q);
      ExpectSameResult(fresh, reference, label + " (fresh ctx)");
      ExpectSameResult(reused, reference, label + " (reused ctx)");
    }
  }
}

TEST_P(OracleEquivalenceTest, ExactSearchMatchesSequentialScan) {
  auto [family_name, sort_order, k] = GetParam();
  Fixture fixture = MakeFixture(7, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  auto family = MakeSimilarityFamily(family_name);

  SearchOptions options;
  options.sort_order = sort_order;
  QueryContext context;
  for (const Transaction& target : fixture.queries) {
    NearestNeighborResult result =
        engine.FindKNearest(target, *family, k, options, &context);
    std::vector<Neighbor> oracle = scanner.FindKNearest(target, *family, k);
    EXPECT_TRUE(result.guaranteed_exact);
    ASSERT_EQ(result.neighbors.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      // Ids pin the tie-break ordering; similarities must agree bitwise
      // except both-infinite (hamming distance 0 under 1/y).
      EXPECT_EQ(result.neighbors[i].id, oracle[i].id) << family_name;
      bool both_inf = std::isinf(result.neighbors[i].similarity) &&
                      std::isinf(oracle[i].similarity);
      if (!both_inf) {
        EXPECT_EQ(result.neighbors[i].similarity, oracle[i].similarity)
            << family_name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleEquivalenceTest,
    ::testing::Combine(
        ::testing::Values("hamming", "match_ratio", "cosine"),
        ::testing::Values(EntrySortOrder::kOptimisticBound,
                          EntrySortOrder::kSupercoordinateSimilarity),
        ::testing::Values<size_t>(1, 7)));

// --- Multi-target aggregate. ---

TEST(OracleEquivalenceMultiTargetTest, MatchesReferenceAndSequentialScan) {
  Fixture fixture = MakeFixture(55, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  QueryContext context;

  for (const char* family_name : {"hamming", "match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(family_name);
    std::vector<Transaction> targets(fixture.queries.begin(),
                                     fixture.queries.begin() + 3);
    for (EntrySortOrder order : {EntrySortOrder::kOptimisticBound,
                                 EntrySortOrder::kSupercoordinateSimilarity}) {
      SearchOptions options;
      options.sort_order = order;
      NearestNeighborResult reference =
          engine.FindKNearestMultiTargetReference(targets, *family, 5, options);
      NearestNeighborResult result = engine.FindKNearestMultiTarget(
          targets, *family, 5, options, &context);
      ExpectSameResult(result, reference,
                       std::string(family_name) + " multi-target");

      std::vector<Neighbor> oracle =
          scanner.FindKNearestMultiTarget(targets, *family, 5);
      ASSERT_EQ(result.neighbors.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(result.neighbors[i].id, oracle[i].id) << family_name;
      }
    }
  }
}

// --- Degenerate shapes the lazy orderer must handle like the sort did. ---

TEST(OracleEquivalenceEdgeTest, KLargerThanDatabase) {
  Fixture fixture = MakeFixture(13, 7, 1, /*db_size=*/40, /*num_queries=*/4);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("match_ratio");
  QueryContext context;
  for (const Transaction& target : fixture.queries) {
    NearestNeighborResult reference =
        engine.FindKNearestReference(target, *family, 100);
    NearestNeighborResult result =
        engine.FindKNearest(target, *family, 100, {}, &context);
    ExpectSameResult(result, reference, "k > db");
  }
}

TEST(OracleEquivalenceEdgeTest, EmptyTargetAndTinyBudget) {
  Fixture fixture = MakeFixture(29, 7, 1, /*db_size=*/200, /*num_queries=*/2);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("hamming");
  QueryContext context;
  SearchOptions options;
  options.max_access_fraction = 0.005;  // Budget of a single transaction.
  options.collect_trace = true;
  Transaction empty;
  NearestNeighborResult reference =
      engine.FindKNearestReference(empty, *family, 3, options);
  NearestNeighborResult result =
      engine.FindKNearest(empty, *family, 3, options, &context);
  ExpectSameResult(result, reference, "empty target, tiny budget");
}

TEST(OracleEquivalenceEdgeTest, BoundDominanceHoldsOnOverhauledEngine) {
  Fixture fixture = MakeFixture(91, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  for (const char* family_name : {"hamming", "match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(family_name);
    // Aborts on any Lemma 2.1 violation; exercised here so the invariant
    // layer stays wired to the overhauled query path.
    engine.CheckBoundDominance(fixture.queries.front(), *family);
  }
  fixture.table.CheckInvariants(&fixture.db);
}

}  // namespace
}  // namespace mbi
