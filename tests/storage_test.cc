#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/transaction_store.h"
#include "txn/database.h"

namespace mbi {
namespace {

// --- PageStore ---

TEST(PageStoreTest, SerializedSizeIsLengthPrefixPlusItems) {
  EXPECT_EQ(PageStore::SerializedSize(Transaction({1, 2, 3})), 16u);
  EXPECT_EQ(PageStore::SerializedSize(Transaction{}), 4u);
}

TEST(PageStoreTest, AppendsFillPagesThenOverflow) {
  PageStore store(64);  // Room for ~4 three-item transactions (16B each).
  for (TransactionId id = 0; id < 5; ++id) {
    store.Append(id, 16);
  }
  EXPECT_EQ(store.size(), 2u);
  IoStats stats;
  EXPECT_EQ(store.Read(0, &stats).transaction_ids.size(), 4u);
  EXPECT_EQ(store.Read(1, &stats).transaction_ids.size(), 1u);
}

TEST(PageStoreTest, ReadChargesIo) {
  PageStore store(64);
  store.Append(0, 16);
  IoStats stats;
  store.Read(0, &stats);
  store.Read(0, &stats);
  EXPECT_EQ(stats.pages_read, 2u);
  EXPECT_EQ(stats.bytes_read, 128u);
  store.Read(0, nullptr);  // Null stats must be accepted.
  EXPECT_EQ(stats.pages_read, 2u);
}

TEST(PageStoreTest, SealForcesFreshPage) {
  PageStore store(64);
  store.Append(0, 16);
  store.SealCurrentPage();
  PageId page = store.Append(1, 16);
  EXPECT_EQ(page, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(PageStoreTest, RejectsOversizedTransaction) {
  PageStore store(64);
  EXPECT_DEATH(store.Append(0, 65), "larger than a page");
}

// --- BufferPool ---

TEST(BufferPoolTest, HitsAvoidPhysicalReads) {
  PageStore store(64);
  store.Append(0, 16);
  store.SealCurrentPage();
  store.Append(1, 16);
  BufferPool pool(&store, 2);
  IoStats stats;
  pool.Read(0, &stats);
  pool.Read(0, &stats);
  pool.Read(1, &stats);
  pool.Read(0, &stats);
  EXPECT_EQ(stats.pages_read, 2u);    // Two cold misses.
  EXPECT_EQ(stats.pages_cached, 2u);  // Two hits.
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  PageStore store(64);
  for (TransactionId id = 0; id < 3; ++id) {
    store.Append(id, 16);
    store.SealCurrentPage();
  }
  BufferPool pool(&store, 2);
  IoStats stats;
  pool.Read(0, &stats);  // Miss, cache {0}.
  pool.Read(1, &stats);  // Miss, cache {0,1}.
  pool.Read(0, &stats);  // Hit, 0 is now MRU.
  pool.Read(2, &stats);  // Miss, evicts 1.
  pool.Read(1, &stats);  // Miss again (was evicted).
  pool.Read(0, &stats);  // Page 0 evicted by the reload of 1? LRU: after
                         // reading 2, cache {0,2}; reading 1 evicts 0.
  EXPECT_EQ(stats.pages_read, 5u);
  EXPECT_EQ(stats.pages_cached, 1u);
  pool.CheckInvariants();
}

TEST(BufferPoolTest, ZeroCapacityDisablesCaching) {
  PageStore store(64);
  store.Append(0, 16);
  BufferPool pool(&store, 0);
  IoStats stats;
  pool.Read(0, &stats);
  pool.Read(0, &stats);
  EXPECT_EQ(stats.pages_read, 2u);
  EXPECT_EQ(stats.pages_cached, 0u);
  pool.CheckInvariants();
}

TEST(BufferPoolTest, ClearDropsCache) {
  PageStore store(64);
  store.Append(0, 16);
  BufferPool pool(&store, 4);
  IoStats stats;
  pool.Read(0, &stats);
  pool.Clear();
  pool.Read(0, &stats);
  EXPECT_EQ(stats.pages_read, 2u);
}

// --- TransactionStore ---

TransactionDatabase MakeDatabase(size_t count, size_t items_per_transaction) {
  TransactionDatabase db(1000);
  for (size_t t = 0; t < count; ++t) {
    std::vector<ItemId> items;
    for (size_t i = 0; i < items_per_transaction; ++i) {
      items.push_back(static_cast<ItemId>((t * items_per_transaction + i) %
                                          1000));
    }
    db.Add(Transaction(std::move(items)));
  }
  return db;
}

TEST(TransactionStoreTest, BucketedLayoutGroupsByBucket) {
  TransactionDatabase db = MakeDatabase(10, 3);
  std::vector<uint32_t> bucket_of = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  TransactionStore store =
      TransactionStore::BuildBucketed(db, bucket_of, 2, 4096);

  IoStats stats;
  auto bucket0 = store.FetchBucket(0, &stats);
  auto bucket1 = store.FetchBucket(1, &stats);
  EXPECT_EQ(bucket0, (std::vector<TransactionId>{0, 2, 4, 6, 8}));
  EXPECT_EQ(bucket1, (std::vector<TransactionId>{1, 3, 5, 7, 9}));
  EXPECT_EQ(stats.transactions_fetched, 10u);
  EXPECT_EQ(stats.pages_read, 2u);  // Each bucket fits one page.
}

TEST(TransactionStoreTest, BucketsNeverSharePages) {
  TransactionDatabase db = MakeDatabase(100, 5);
  std::vector<uint32_t> bucket_of(100);
  for (size_t i = 0; i < 100; ++i) bucket_of[i] = static_cast<uint32_t>(i % 7);
  TransactionStore store =
      TransactionStore::BuildBucketed(db, bucket_of, 7, 128);

  std::set<PageId> seen;
  for (uint32_t b = 0; b < 7; ++b) {
    for (PageId page : store.PagesOfBucket(b)) {
      EXPECT_TRUE(seen.insert(page).second)
          << "page " << page << " appears in two buckets";
    }
  }
}

TEST(TransactionStoreTest, EmptyBucketsAllowed) {
  TransactionDatabase db = MakeDatabase(4, 3);
  std::vector<uint32_t> bucket_of = {2, 2, 2, 2};
  TransactionStore store =
      TransactionStore::BuildBucketed(db, bucket_of, 5, 4096);
  IoStats stats;
  EXPECT_TRUE(store.FetchBucket(0, &stats).empty());
  EXPECT_EQ(store.FetchBucket(2, &stats).size(), 4u);
  EXPECT_EQ(stats.pages_read, 1u);  // Empty bucket costs nothing.
}

TEST(TransactionStoreTest, SequentialLayoutPreservesOrder) {
  TransactionDatabase db = MakeDatabase(50, 4);
  TransactionStore store = TransactionStore::BuildSequential(db, 256);
  IoStats stats;
  auto all = store.FetchBucket(0, &stats);
  ASSERT_EQ(all.size(), 50u);
  for (TransactionId id = 0; id < 50; ++id) EXPECT_EQ(all[id], id);
}

TEST(TransactionStoreTest, FetchTransactionChargesPointRead) {
  TransactionDatabase db = MakeDatabase(50, 4);
  TransactionStore store = TransactionStore::BuildSequential(db, 256);
  IoStats stats;
  store.FetchTransaction(10, nullptr, &stats);
  store.FetchTransaction(11, nullptr, &stats);
  EXPECT_EQ(stats.transactions_fetched, 2u);
  EXPECT_EQ(stats.pages_read, 2u);

  // Through a buffer pool, adjacent fetches on one page hit the cache.
  BufferPool pool(&store.page_store(), 8);
  IoStats cached;
  store.FetchTransaction(10, &pool, &cached);
  store.FetchTransaction(11, &pool, &cached);
  EXPECT_EQ(cached.transactions_fetched, 2u);
  EXPECT_EQ(cached.pages_read + cached.pages_cached, 2u);
  EXPECT_GE(cached.pages_cached, 1u);  // Same page: second is a hit.
}

TEST(TransactionStoreTest, PageOfTransactionConsistentWithBuckets) {
  TransactionDatabase db = MakeDatabase(30, 4);
  std::vector<uint32_t> bucket_of(30);
  for (size_t i = 0; i < 30; ++i) bucket_of[i] = static_cast<uint32_t>(i % 3);
  TransactionStore store =
      TransactionStore::BuildBucketed(db, bucket_of, 3, 128);
  for (TransactionId id = 0; id < 30; ++id) {
    PageId page = store.PageOfTransaction(id);
    const auto& pages = store.PagesOfBucket(bucket_of[id]);
    EXPECT_NE(std::find(pages.begin(), pages.end(), page), pages.end());
  }
}

}  // namespace
}  // namespace mbi
