#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

namespace mbi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(InverseHammingTest, Values) {
  InverseHammingSimilarity f;
  EXPECT_DOUBLE_EQ(f.Evaluate(3, 4), 0.25);
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 1), 1.0);
  EXPECT_EQ(f.Evaluate(5, 0), kInf);
  // f is independent of the match count.
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 7), f.Evaluate(100, 7));
}

TEST(MatchRatioTest, Values) {
  MatchRatioSimilarity f;
  EXPECT_DOUBLE_EQ(f.Evaluate(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 9), 0.0);
  EXPECT_EQ(f.Evaluate(2, 0), kInf);
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 0), 0.0);
}

TEST(CosineTest, MatchesTransactionCosineOnFeasiblePairs) {
  // Target T with 4 items, candidate S with 3 items, 2 matches:
  // x = 2, y = (4-2)+(3-2) = 3.
  Transaction target({1, 2, 3, 4});
  Transaction candidate({3, 4, 9});
  CosineSimilarity f(target.size());
  size_t x = MatchCount(target, candidate);
  size_t y = HammingDistance(target, candidate);
  EXPECT_DOUBLE_EQ(
      f.Evaluate(static_cast<int>(x), static_cast<int>(y)),
      CosineBetween(target, candidate));
}

TEST(CosineTest, IdenticalTransactionsScoreOne) {
  CosineSimilarity f(5);
  EXPECT_DOUBLE_EQ(f.Evaluate(5, 0), 1.0);
}

TEST(CosineTest, ZeroMatchesScoreZero) {
  CosineSimilarity f(5);
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 12), 0.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(0, 0), 0.0);
}

TEST(CosineTest, EmptyTargetScoresZero) {
  CosineSimilarity f(0);
  EXPECT_DOUBLE_EQ(f.Evaluate(3, 2), 0.0);
}

TEST(CustomSimilarityTest, WrapsCallable) {
  CustomSimilarity f("twice_matches",
                     [](int x, int y) { return 2.0 * x - 0.5 * y; });
  EXPECT_DOUBLE_EQ(f.Evaluate(3, 2), 5.0);
  EXPECT_EQ(f.name(), "twice_matches");
}

TEST(FamilyTest, MakeByName) {
  Transaction target({1, 2, 3});
  EXPECT_EQ(MakeSimilarityFamily("hamming")->ForTarget(target)->name(),
            "hamming");
  EXPECT_EQ(MakeSimilarityFamily("match_ratio")->ForTarget(target)->name(),
            "match_ratio");
  EXPECT_EQ(MakeSimilarityFamily("cosine")->ForTarget(target)->name(),
            "cosine");
  EXPECT_DEATH(MakeSimilarityFamily("no_such_family"), "unknown");
}

TEST(FamilyTest, CosineFamilyBindsTargetSize) {
  CosineFamily family;
  Transaction small({1});
  Transaction large({1, 2, 3, 4});
  // Same (x, y) scores differently for different target sizes.
  auto f_small = family.ForTarget(small);
  auto f_large = family.ForTarget(large);
  EXPECT_NE(f_small->Evaluate(1, 2), f_large->Evaluate(1, 2));
}

// --- Property sweep: the monotonicity constraints of paper Section 2 must
// hold over the full integer domain, because bound evaluation feeds in
// jointly-infeasible (x, y) pairs.

class MonotonicityTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(MonotonicityTest, NonDecreasingInMatchesNonIncreasingInHamming) {
  auto [family_name, target_size] = GetParam();
  auto family = MakeSimilarityFamily(family_name);
  std::vector<ItemId> items;
  for (int i = 0; i < target_size; ++i) {
    items.push_back(static_cast<ItemId>(i));
  }
  auto f = family->ForTarget(Transaction(items));

  constexpr int kMaxX = 20;
  constexpr int kMaxY = 30;
  for (int x = 0; x <= kMaxX; ++x) {
    for (int y = 0; y <= kMaxY; ++y) {
      double here = f->Evaluate(x, y);
      EXPECT_LE(here, f->Evaluate(x + 1, y))
          << family_name << " not monotone in x at (" << x << ", " << y << ")";
      EXPECT_GE(here, f->Evaluate(x, y + 1))
          << family_name << " not antitone in y at (" << x << ", " << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MonotonicityTest,
    ::testing::Values(std::make_tuple("hamming", 5),
                      std::make_tuple("hamming", 12),
                      std::make_tuple("match_ratio", 5),
                      std::make_tuple("match_ratio", 12),
                      std::make_tuple("cosine", 1),
                      std::make_tuple("cosine", 5),
                      std::make_tuple("cosine", 12),
                      std::make_tuple("cosine", 25)));

// --- CheckAdmissibility ---

TEST(AdmissibilityCheckTest, AcceptsThePaperFunctions) {
  for (const char* name : {"hamming", "match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(name);
    auto f = family->ForTarget(Transaction({1, 2, 3, 4, 5}));
    AdmissibilityReport report = CheckAdmissibility(*f, 25, 40);
    EXPECT_TRUE(report.admissible) << name << ": " << report.ToString();
    EXPECT_EQ(report.ToString(), "admissible");
  }
}

TEST(AdmissibilityCheckTest, RejectsMatchViolations) {
  // Decreasing in matches.
  CustomSimilarity bad("bad_x", [](int x, int y) { return -x - y; });
  AdmissibilityReport report = CheckAdmissibility(bad, 10, 10);
  EXPECT_FALSE(report.admissible);
  EXPECT_TRUE(report.match_monotonicity_violated);
  EXPECT_NE(report.ToString().find("match monotonicity"), std::string::npos);
}

TEST(AdmissibilityCheckTest, RejectsHammingViolations) {
  // Increasing in hamming.
  CustomSimilarity bad("bad_y", [](int x, int y) { return x + y; });
  AdmissibilityReport report = CheckAdmissibility(bad, 10, 10);
  EXPECT_FALSE(report.admissible);
  EXPECT_FALSE(report.match_monotonicity_violated);
  EXPECT_NE(report.ToString().find("hamming monotonicity"),
            std::string::npos);
}

TEST(AdmissibilityCheckTest, PinpointsTheFirstViolation) {
  // Admissible except for a spike at (3, 2) -> (3, 3).
  CustomSimilarity tricky("tricky", [](int x, int y) {
    if (x == 3 && y == 3) return 100.0;
    return static_cast<double>(x) - static_cast<double>(y);
  });
  AdmissibilityReport report = CheckAdmissibility(tricky, 10, 10);
  EXPECT_FALSE(report.admissible);
  // First reached in scan order: comparing f(3,2) against f(3,3).
  EXPECT_EQ(report.x, 3);
  EXPECT_EQ(report.y, 2);
}

TEST(AdmissibilityCheckTest, ZeroGridIsTriviallyAdmissible) {
  CustomSimilarity any("any", [](int x, int y) { return x * 1000.0 - y; });
  EXPECT_TRUE(CheckAdmissibility(any, 0, 0).admissible);
}

// Lemma 2.1: for alpha >= x and beta <= y, f(alpha, beta) >= f(x, y).
class Lemma21Test : public ::testing::TestWithParam<const char*> {};

TEST_P(Lemma21Test, UpperBoundProperty) {
  auto family = MakeSimilarityFamily(GetParam());
  auto f = family->ForTarget(Transaction({1, 2, 3, 4, 5, 6, 7}));
  for (int x = 0; x <= 10; ++x) {
    for (int y = 0; y <= 14; ++y) {
      double value = f->Evaluate(x, y);
      for (int alpha = x; alpha <= 12; ++alpha) {
        for (int beta = 0; beta <= y; ++beta) {
          EXPECT_GE(f->Evaluate(alpha, beta), value)
              << GetParam() << " violates Lemma 2.1 at x=" << x << " y=" << y
              << " alpha=" << alpha << " beta=" << beta;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Lemma21Test,
                         ::testing::Values("hamming", "match_ratio",
                                           "cosine"));

}  // namespace
}  // namespace mbi
