// QueryContext reuse semantics: a context carries buffers between queries
// but never *state* — every query answered through a reused context must be
// bit-identical to one answered through a fresh context, across changes of
// target, k, similarity family, sort order, and target count, and under
// concurrent batch execution on shared pools. Also covers the deterministic
// parallel bound computation (bound_pool) and the caller-owned-pool batch
// overload.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "gen/quest_generator.h"
#include "util/alloc_guard.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

struct Fixture {
  TransactionDatabase db;
  SignatureTable table;
  std::vector<Transaction> queries;
};

Fixture MakeFixture(uint64_t seed, uint32_t cardinality, uint64_t db_size,
                    uint64_t num_queries) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 70;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(db_size);
  IndexBuildConfig build;
  build.clustering.target_cardinality = cardinality;
  SignatureTable table = BuildIndex(db, build);
  auto queries = generator.GenerateQueries(num_queries);
  return {std::move(db), std::move(table), std::move(queries)};
}

void ExpectSameResult(const NearestNeighborResult& a,
                      const NearestNeighborResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << label;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << label;
    EXPECT_EQ(a.neighbors[i].similarity, b.neighbors[i].similarity) << label;
  }
  EXPECT_EQ(a.guaranteed_exact, b.guaranteed_exact) << label;
  EXPECT_EQ(a.unexplored_optimistic_bound, b.unexplored_optimistic_bound)
      << label;
  EXPECT_EQ(a.best_unscanned_bound, b.best_unscanned_bound) << label;
  EXPECT_EQ(a.stats.entries_scanned, b.stats.entries_scanned) << label;
  EXPECT_EQ(a.stats.entries_pruned, b.stats.entries_pruned) << label;
  EXPECT_EQ(a.stats.transactions_evaluated, b.stats.transactions_evaluated)
      << label;
  EXPECT_EQ(a.stats.io.pages_read, b.stats.io.pages_read) << label;
}

/// Interleaves queries of different shape through ONE context and checks
/// each against a context-free call: any state leaking from a previous
/// query (stale heap entries, oversized calculator tables, leftover packed
/// bits from a larger target) would surface as a mismatch.
TEST(QueryContextTest, InterleavedShapesMatchFreshContexts) {
  Fixture fixture = MakeFixture(101, 9, 1200, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto hamming = MakeSimilarityFamily("hamming");
  auto match_ratio = MakeSimilarityFamily("match_ratio");
  auto cosine = MakeSimilarityFamily("cosine");
  const SimilarityFamily* families[] = {hamming.get(), match_ratio.get(),
                                        cosine.get()};
  const size_t ks[] = {1, 3, 9, 2};
  const EntrySortOrder orders[] = {EntrySortOrder::kOptimisticBound,
                                   EntrySortOrder::kSupercoordinateSimilarity};

  QueryContext reused;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t q = 0; q < fixture.queries.size(); ++q) {
      const SimilarityFamily& family = *families[(round + q) % 3];
      SearchOptions options;
      options.sort_order = orders[q % 2];
      options.max_access_fraction = (q % 3 == 2) ? 0.1 : 1.0;
      size_t k = ks[(round + q) % 4];
      NearestNeighborResult with_context = engine.FindKNearest(
          fixture.queries[q], family, k, options, &reused);
      NearestNeighborResult fresh =
          engine.FindKNearest(fixture.queries[q], family, k, options);
      ExpectSameResult(with_context, fresh,
                       "round " + std::to_string(round) + " q " +
                           std::to_string(q));
    }
  }
}

/// Shrinking the target count (3 targets, then 1) must not leave the two
/// stale per-target bindings participating in the next query.
TEST(QueryContextTest, MultiTargetToSingleTargetDoesNotLeak) {
  Fixture fixture = MakeFixture(202, 8, 900, 6);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("cosine");

  QueryContext context;
  std::vector<Transaction> many(fixture.queries.begin(),
                                fixture.queries.begin() + 3);
  engine.FindKNearestMultiTarget(many, *family, 4, {}, &context);

  NearestNeighborResult with_context =
      engine.FindKNearest(fixture.queries[4], *family, 4, {}, &context);
  NearestNeighborResult fresh =
      engine.FindKNearest(fixture.queries[4], *family, 4);
  ExpectSameResult(with_context, fresh, "after multi-target");

  // And back up to multi-target, which must match the reference path.
  NearestNeighborResult multi =
      engine.FindKNearestMultiTarget(many, *family, 4, {}, &context);
  NearestNeighborResult multi_ref =
      engine.FindKNearestMultiTargetReference(many, *family, 4);
  ExpectSameResult(multi, multi_ref, "multi-target after single");
}

/// Parallel bound computation through a bound_pool must be deterministic and
/// bit-identical to the serial path, for any thread count and chunk size.
/// The thresholds are lowered so the parallel path actually runs on this
/// small test table.
TEST(QueryContextTest, ParallelBoundComputationIsDeterministic) {
  Fixture fixture = MakeFixture(303, 10, 1500, 6);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("match_ratio");

  for (size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (size_t chunk : {1u, 7u, 64u, 100000u}) {
      QueryContext context;
      context.set_bound_pool(&pool);
      context.set_parallel_bound_min_entries(1);
      context.set_parallel_bound_chunk(chunk);
      for (const Transaction& target : fixture.queries) {
        SearchOptions options;
        options.collect_trace = true;
        NearestNeighborResult parallel =
            engine.FindKNearest(target, *family, 5, options, &context);
        NearestNeighborResult serial =
            engine.FindKNearest(target, *family, 5, options);
        ExpectSameResult(parallel, serial,
                         "threads=" + std::to_string(threads) +
                             " chunk=" + std::to_string(chunk));
        ASSERT_EQ(parallel.trace.size(), serial.trace.size());
        for (size_t i = 0; i < parallel.trace.size(); ++i) {
          EXPECT_EQ(parallel.trace[i].optimistic_bound,
                    serial.trace[i].optimistic_bound);
        }
      }
    }
  }
}

TEST(QueryContextTest, BatchMatchesSerialWithAndWithoutCallerPool) {
  Fixture fixture = MakeFixture(404, 9, 1000, 24);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("hamming");
  SearchOptions options;
  options.max_access_fraction = 0.5;

  std::vector<NearestNeighborResult> serial;
  for (const Transaction& target : fixture.queries) {
    serial.push_back(engine.FindKNearest(target, *family, 6, options));
  }

  std::vector<NearestNeighborResult> owned_pool_batch =
      FindKNearestBatch(engine, fixture.queries, *family, 6, options,
                        /*num_threads=*/4);
  ASSERT_EQ(owned_pool_batch.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameResult(owned_pool_batch[i], serial[i],
                     "temp pool, query " + std::to_string(i));
  }

  ThreadPool pool(4);
  std::vector<NearestNeighborResult> caller_pool_batch = FindKNearestBatch(
      engine, fixture.queries, *family, 6, options, /*num_threads=*/0, &pool);
  ASSERT_EQ(caller_pool_batch.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameResult(caller_pool_batch[i], serial[i],
                     "caller pool, query " + std::to_string(i));
  }
}

/// Several batches in flight on one shared pool (stress_concurrency_test
/// style): per-shard contexts must not interfere across batches, and every
/// batch must return the same results as its serial run.
TEST(QueryContextTest, ConcurrentBatchesShareOnePool) {
  Fixture fixture = MakeFixture(505, 8, 800, 12);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto hamming = MakeSimilarityFamily("hamming");
  auto cosine = MakeSimilarityFamily("cosine");

  std::vector<NearestNeighborResult> serial_hamming, serial_cosine;
  for (const Transaction& target : fixture.queries) {
    serial_hamming.push_back(engine.FindKNearest(target, *hamming, 3));
    serial_cosine.push_back(engine.FindKNearest(target, *cosine, 5));
  }

  ThreadPool batch_pool(6);
  constexpr size_t kLaunchers = 4;
  std::vector<std::vector<NearestNeighborResult>> outputs(kLaunchers);
  std::atomic<int> failures{0};
  {
    // Launch the batches themselves from separate threads so they contend
    // for the shared pool simultaneously.
    std::vector<std::thread> launchers;
    launchers.reserve(kLaunchers);
    for (size_t b = 0; b < kLaunchers; ++b) {
      launchers.emplace_back([&, b] {
        const SimilarityFamily& family = (b % 2 == 0) ? *hamming : *cosine;
        size_t k = (b % 2 == 0) ? 3 : 5;
        outputs[b] = FindKNearestBatch(engine, fixture.queries, family, k, {},
                                       /*num_threads=*/0, &batch_pool);
        if (outputs[b].size() != fixture.queries.size()) failures.fetch_add(1);
      });
    }
    for (auto& t : launchers) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (size_t b = 0; b < kLaunchers; ++b) {
    const auto& expected = (b % 2 == 0) ? serial_hamming : serial_cosine;
    ASSERT_EQ(outputs[b].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ExpectSameResult(outputs[b][i], expected[i],
                       "batch " + std::to_string(b) + " query " +
                           std::to_string(i));
    }
  }
}

/// The MBI_HOT zero-allocation contract (util/hot_path.h), dynamically: once
/// a (context, result) pair is warm, repeating the same query sequence
/// through the result-out overloads must not touch the heap. mbi-lint proves
/// the hot path clean statically; this pins it at runtime via the debug-build
/// allocation interposer. In release builds (guard inert) the test still runs
/// the sequence and checks results, it just can't observe allocations.
///
/// One context per family: RebindTarget reuses a warm function object only
/// when the family matches the previous binding, so alternating families
/// through one context would (correctly) re-allocate the function.
TEST(QueryContextTest, SteadyStateQueriesDoNotAllocate) {
  Fixture fixture = MakeFixture(606, 9, 1000, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto hamming = MakeSimilarityFamily("hamming");
  auto cosine = MakeSimilarityFamily("cosine");
  SearchOptions options;
  options.max_access_fraction = 0.5;

  QueryContext hamming_context;
  QueryContext cosine_context;
  NearestNeighborResult result;
  auto run_pass = [&] {
    for (const Transaction& target : fixture.queries) {
      engine.FindKNearest(target, *hamming, 5, options, &hamming_context,
                          &result);
      engine.FindKNearest(target, *cosine, 3, options, &cosine_context,
                          &result);
    }
  };
  run_pass();  // Cold pass: grows every buffer to its steady-state size.
  run_pass();  // Warm pass: confirms sizes are stable before the ban.

  const uint64_t before = AllocGuardViolations();
  {
    ScopedAllocationBan ban("steady-state FindKNearest");
    run_pass();
  }
  EXPECT_EQ(AllocGuardViolations(), before)
      << "warm FindKNearest allocated; AllocGuardEnabled()="
      << AllocGuardEnabled();

  // The banned pass must still produce correct answers.
  engine.FindKNearest(fixture.queries[0], *hamming, 5, options,
                      &hamming_context, &result);
  NearestNeighborResult fresh =
      engine.FindKNearest(fixture.queries[0], *hamming, 5, options);
  ExpectSameResult(result, fresh, "after banned passes");
}

/// Same contract for the batch entry point: a warm (workspace, results) pair
/// on the single-shard serial path answers the whole batch without
/// allocating.
TEST(QueryContextTest, SteadyStateBatchDoesNotAllocate) {
  Fixture fixture = MakeFixture(707, 8, 900, 10);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  auto family = MakeSimilarityFamily("match_ratio");

  BatchQueryWorkspace workspace;
  std::vector<NearestNeighborResult> results;
  auto run_batch = [&] {
    FindKNearestBatch(engine, fixture.queries, *family, 4, {},
                      /*num_threads=*/1, /*pool=*/nullptr, &workspace,
                      &results);
  };
  run_batch();
  run_batch();

  const uint64_t before = AllocGuardViolations();
  {
    ScopedAllocationBan ban("steady-state FindKNearestBatch");
    run_batch();
  }
  EXPECT_EQ(AllocGuardViolations(), before)
      << "warm single-shard batch allocated; AllocGuardEnabled()="
      << AllocGuardEnabled();

  ASSERT_EQ(results.size(), fixture.queries.size());
  for (size_t i = 0; i < fixture.queries.size(); ++i) {
    NearestNeighborResult fresh =
        engine.FindKNearest(fixture.queries[i], *family, 4);
    ExpectSameResult(results[i], fresh, "batch query " + std::to_string(i));
  }
}

}  // namespace
}  // namespace mbi
