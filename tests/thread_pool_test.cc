#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForExplicitChunkCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Chunk sizes that divide the range, leave a ragged tail, exceed the
  // range, and degenerate to one index per grab.
  for (size_t chunk : {1u, 3u, 64u, 250u, 999u, 1000u, 5000u}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); }, chunk);
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "chunk " << chunk << ", index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkLargerThanCountRunsInline) {
  // With one chunk covering the whole range, a single worker executes the
  // entire loop; effects must still be exact (and non-atomic is safe).
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i] += 1; }, 1000);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSmallCountOnLargePool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, 1);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorRunsQueuedButUnstartedTasks) {
  // No Wait() before destruction: the destructor contract is that every
  // submitted task still runs before the workers join.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerIsVisibleToWait) {
  // A task that submits follow-up work is itself in flight while it enqueues,
  // so Wait() cannot return between the parent finishing and the children
  // being counted.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &counter] {
      for (int j = 0; j < 5; ++j) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitFromManyExternalThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SingleWorkerPreservesTaskEffects) {
  // One worker forces full serialization through the queue; the sum must
  // still come out exact (catches lost-task bugs without needing atomics).
  ThreadPool pool(1);
  int sum = 0;  // Intentionally non-atomic: only the one worker touches it.
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum, 5050);
}

TEST(BatchQueryTest, MatchesSequentialResults) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_transaction_size = 9.0;
  config.seed = 901;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(2000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  auto targets = generator.GenerateQueries(32);

  auto parallel = FindKNearestBatch(engine, targets, family, 5, {},
                                    /*num_threads=*/4);
  ASSERT_EQ(parallel.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    auto sequential = engine.FindKNearest(targets[i], family, 5);
    ASSERT_EQ(parallel[i].neighbors.size(), sequential.neighbors.size());
    for (size_t j = 0; j < sequential.neighbors.size(); ++j) {
      EXPECT_EQ(parallel[i].neighbors[j].id, sequential.neighbors[j].id);
      EXPECT_EQ(parallel[i].neighbors[j].similarity,
                sequential.neighbors[j].similarity);
    }
    EXPECT_EQ(parallel[i].stats.transactions_evaluated,
              sequential.stats.transactions_evaluated);
  }
}

TEST(BatchQueryTest, EmptyBatch) {
  QuestGeneratorConfig config;
  config.universe_size = 100;
  config.num_large_itemsets = 20;
  config.seed = 907;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(100);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 5;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  EXPECT_TRUE(FindKNearestBatch(engine, {}, family, 3).empty());
}

TEST(BatchQueryTest, SingleThreadPathMatchesParallelPath) {
  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 40;
  config.seed = 911;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(800);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  CosineFamily family;
  auto targets = generator.GenerateQueries(10);

  auto one = FindKNearestBatch(engine, targets, family, 3, {}, 1);
  auto many = FindKNearestBatch(engine, targets, family, 3, {}, 8);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].neighbors.size(), many[i].neighbors.size());
    for (size_t j = 0; j < one[i].neighbors.size(); ++j) {
      EXPECT_EQ(one[i].neighbors[j].id, many[i].neighbors[j].id);
    }
  }
}

}  // namespace
}  // namespace mbi
