#include <gtest/gtest.h>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

struct Fixture {
  TransactionDatabase db;
  SignatureTable table;
  std::vector<Transaction> queries;
};

Fixture MakeFixture(uint64_t seed = 601) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(2000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);
  auto queries = generator.GenerateQueries(5);
  return {std::move(db), std::move(table), std::move(queries)};
}

TEST(TraceTest, DisabledByDefault) {
  Fixture fixture = MakeFixture();
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  MatchRatioFamily family;
  auto result = engine.FindNearest(fixture.queries[0], family);
  EXPECT_TRUE(result.trace.empty());
}

TEST(TraceTest, CoversEveryEntryExactlyOnce) {
  Fixture fixture = MakeFixture();
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  MatchRatioFamily family;
  SearchOptions options;
  options.collect_trace = true;

  for (const Transaction& target : fixture.queries) {
    auto result = engine.FindNearest(target, family, options);
    EXPECT_EQ(result.trace.size(), fixture.table.entries().size());
    size_t scanned = 0, pruned = 0, unexplored = 0;
    uint64_t scanned_transactions = 0;
    for (const EntryTrace& entry : result.trace) {
      switch (entry.action) {
        case EntryTrace::Action::kScanned:
          ++scanned;
          scanned_transactions += entry.transaction_count;
          break;
        case EntryTrace::Action::kPruned:
          ++pruned;
          break;
        case EntryTrace::Action::kUnexplored:
          ++unexplored;
          break;
      }
    }
    EXPECT_EQ(scanned, result.stats.entries_scanned);
    EXPECT_EQ(pruned, result.stats.entries_pruned);
    EXPECT_EQ(unexplored, result.stats.entries_unexplored);
    EXPECT_EQ(scanned_transactions, result.stats.transactions_evaluated);
  }
}

TEST(TraceTest, PrunedEntriesNeverBeatThePessimisticBoundAtVisit) {
  Fixture fixture = MakeFixture(607);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  InverseHammingFamily family;
  SearchOptions options;
  options.collect_trace = true;
  auto result = engine.FindNearest(fixture.queries[0], family, options);
  for (const EntryTrace& entry : result.trace) {
    if (entry.action == EntryTrace::Action::kPruned) {
      EXPECT_LE(entry.optimistic_bound, entry.pessimistic_bound);
    }
  }
}

TEST(TraceTest, VisitOrderIsByDecreasingOptimisticBound) {
  Fixture fixture = MakeFixture(613);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  MatchRatioFamily family;
  SearchOptions options;
  options.collect_trace = true;
  auto result = engine.FindNearest(fixture.queries[1], family, options);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i - 1].optimistic_bound,
              result.trace[i].optimistic_bound);
  }
}

TEST(TraceTest, TraceDoesNotChangeTheAnswer) {
  Fixture fixture = MakeFixture(617);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  CosineFamily family;
  SearchOptions with_trace;
  with_trace.collect_trace = true;
  for (const Transaction& target : fixture.queries) {
    auto a = engine.FindKNearest(target, family, 3);
    auto b = engine.FindKNearest(target, family, 3, with_trace);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
    EXPECT_EQ(a.stats.transactions_evaluated, b.stats.transactions_evaluated);
  }
}

}  // namespace
}  // namespace mbi
