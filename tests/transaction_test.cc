#include "txn/transaction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "txn/database.h"
#include "txn/packed_target.h"
#include "util/rng.h"

namespace mbi {
namespace {

TEST(TransactionTest, SortsAndDeduplicatesOnConstruction) {
  Transaction t({9, 1, 5, 1, 9});
  EXPECT_EQ(t.items(), (std::vector<ItemId>{1, 5, 9}));
  EXPECT_EQ(t.size(), 3u);
}

TEST(TransactionTest, EmptyTransaction) {
  Transaction t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Contains(0));
}

TEST(TransactionTest, Contains) {
  Transaction t({2, 6, 17, 20});
  EXPECT_TRUE(t.Contains(2));
  EXPECT_TRUE(t.Contains(20));
  EXPECT_FALSE(t.Contains(3));
}

TEST(TransactionTest, ContainsAll) {
  Transaction t({2, 6, 17, 20});
  EXPECT_TRUE(t.ContainsAll(Transaction({6, 20})));
  EXPECT_TRUE(t.ContainsAll(Transaction{}));
  EXPECT_FALSE(t.ContainsAll(Transaction({6, 21})));
}

TEST(TransactionTest, MatchCountIsIntersectionSize) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4, 5});
  EXPECT_EQ(MatchCount(a, b), 2u);
  EXPECT_EQ(MatchCount(b, a), 2u);
  EXPECT_EQ(MatchCount(a, a), 4u);
  EXPECT_EQ(MatchCount(a, Transaction{}), 0u);
}

TEST(TransactionTest, HammingDistanceIsSymmetricDifferenceSize) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4, 5});
  EXPECT_EQ(HammingDistance(a, b), 3u);  // {1,2} and {5}.
  EXPECT_EQ(HammingDistance(b, a), 3u);
  EXPECT_EQ(HammingDistance(a, a), 0u);
  EXPECT_EQ(HammingDistance(a, Transaction{}), 4u);
}

TEST(TransactionTest, MatchAndHammingAgreeWithSeparateFunctions) {
  Transaction a({1, 5, 7, 10, 12});
  Transaction b({2, 5, 10, 13});
  size_t match = 0, hamming = 0;
  MatchAndHamming(a, b, &match, &hamming);
  EXPECT_EQ(match, MatchCount(a, b));
  EXPECT_EQ(hamming, HammingDistance(a, b));
}

TEST(TransactionTest, SetOperations) {
  Transaction a({1, 2, 3});
  Transaction b({2, 3, 4});
  EXPECT_EQ(Intersect(a, b), Transaction({2, 3}));
  EXPECT_EQ(Union(a, b), Transaction({1, 2, 3, 4}));
  EXPECT_EQ(Difference(a, b), Transaction({1}));
  EXPECT_EQ(Difference(b, a), Transaction({4}));
}

TEST(TransactionTest, CosineMatchesDefinition) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4});
  // x = 2, #a = 4, #b = 2 -> 2 / (2 * sqrt(2)).
  EXPECT_DOUBLE_EQ(CosineBetween(a, b), 2.0 / (2.0 * std::sqrt(2.0)));
  EXPECT_DOUBLE_EQ(CosineBetween(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineBetween(a, Transaction{}), 0.0);
}

TEST(TransactionTest, ToStringRendersSortedItems) {
  EXPECT_EQ(Transaction({3, 1, 2}).ToString(), "{1, 2, 3}");
  EXPECT_EQ(Transaction{}.ToString(), "{}");
}

// --- PackedTarget: the bitmap-probing candidate kernel must agree with the
// merge-scan MatchAndHamming on *every* input. The query engine, the
// sequential-scan oracle, and the inverted index all score candidates
// through it, so this equivalence carries the correctness of the whole
// retrieval stack.

Transaction FromMask(uint32_t mask) {
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 32; ++i) {
    if (mask & (1u << i)) items.push_back(i);
  }
  return Transaction(std::move(items));
}

TEST(PackedTargetTest, ExhaustiveOverTenItemUniverse) {
  // All 1024 x 1024 (target, candidate) subset pairs of a 10-item universe.
  constexpr uint32_t kUniverse = 10;
  constexpr uint32_t kMasks = 1u << kUniverse;
  std::vector<Transaction> transactions;
  transactions.reserve(kMasks);
  for (uint32_t mask = 0; mask < kMasks; ++mask) {
    transactions.push_back(FromMask(mask));
  }
  PackedTarget packed;
  for (uint32_t t = 0; t < kMasks; ++t) {
    packed.Assign(transactions[t], kUniverse);
    ASSERT_EQ(packed.target_size(), transactions[t].size());
    for (uint32_t c = 0; c < kMasks; ++c) {
      size_t packed_match = 0, packed_hamming = 0;
      packed.MatchAndHamming(transactions[c], &packed_match, &packed_hamming);
      size_t merge_match = 0, merge_hamming = 0;
      MatchAndHamming(transactions[t], transactions[c], &merge_match,
                      &merge_hamming);
      ASSERT_EQ(packed_match, merge_match)
          << "target mask " << t << ", candidate mask " << c;
      ASSERT_EQ(packed_hamming, merge_hamming)
          << "target mask " << t << ", candidate mask " << c;
    }
  }
}

TEST(PackedTargetTest, RandomizedLargeUniverse) {
  // Sizes straddling the Bitset word boundary (64) catch masking bugs.
  constexpr uint32_t kUniverse = 300;
  Rng rng(0xfeedbeef);
  PackedTarget packed;
  for (int round = 0; round < 200; ++round) {
    auto draw = [&](double density) {
      std::vector<ItemId> items;
      for (ItemId i = 0; i < kUniverse; ++i) {
        if (rng.UniformDouble() < density) items.push_back(i);
      }
      return Transaction(std::move(items));
    };
    Transaction target = draw(round % 2 == 0 ? 0.03 : 0.4);
    Transaction candidate = draw(round % 3 == 0 ? 0.03 : 0.2);
    packed.Assign(target, kUniverse);
    size_t packed_match = 0, packed_hamming = 0;
    packed.MatchAndHamming(candidate, &packed_match, &packed_hamming);
    size_t merge_match = 0, merge_hamming = 0;
    MatchAndHamming(target, candidate, &merge_match, &merge_hamming);
    ASSERT_EQ(packed_match, merge_match) << "round " << round;
    ASSERT_EQ(packed_hamming, merge_hamming) << "round " << round;
  }
}

TEST(PackedTargetTest, EdgeCases) {
  PackedTarget packed;
  size_t match = 0, hamming = 0;

  // Empty target vs non-empty candidate.
  packed.Assign(Transaction{}, 50);
  packed.MatchAndHamming(Transaction({3, 7, 49}), &match, &hamming);
  EXPECT_EQ(match, 0u);
  EXPECT_EQ(hamming, 3u);

  // Empty vs empty.
  packed.MatchAndHamming(Transaction{}, &match, &hamming);
  EXPECT_EQ(match, 0u);
  EXPECT_EQ(hamming, 0u);

  // Identical sets: full match, zero hamming.
  Transaction t({0, 31, 32, 63, 64, 99});
  packed.Assign(t, 100);
  packed.MatchAndHamming(t, &match, &hamming);
  EXPECT_EQ(match, t.size());
  EXPECT_EQ(hamming, 0u);

  // Disjoint sets: zero match, hamming = sum of sizes.
  packed.MatchAndHamming(Transaction({1, 2, 65}), &match, &hamming);
  EXPECT_EQ(match, 0u);
  EXPECT_EQ(hamming, t.size() + 3);
}

TEST(PackedTargetTest, AssignRebindsAcrossTargetsAndUniverseSizes) {
  PackedTarget packed;
  size_t match = 0, hamming = 0;

  packed.Assign(Transaction({1, 2, 3}), 10);
  packed.MatchAndHamming(Transaction({2, 3, 4}), &match, &hamming);
  EXPECT_EQ(match, 2u);
  EXPECT_EQ(hamming, 2u);

  // Rebind to a different target in the same universe: no stale bits.
  packed.Assign(Transaction({7}), 10);
  packed.MatchAndHamming(Transaction({1, 2, 3}), &match, &hamming);
  EXPECT_EQ(match, 0u);
  EXPECT_EQ(hamming, 4u);

  // Grow the universe, then shrink it back; each Assign must leave exactly
  // the target's bits set.
  packed.Assign(Transaction({100, 200}), 300);
  packed.MatchAndHamming(Transaction({100, 250}), &match, &hamming);
  EXPECT_EQ(match, 1u);
  EXPECT_EQ(hamming, 2u);

  packed.Assign(Transaction({0}), 4);
  packed.MatchAndHamming(Transaction({0, 1}), &match, &hamming);
  EXPECT_EQ(match, 1u);
  EXPECT_EQ(hamming, 1u);
}

TEST(DatabaseTest, AddAndGet) {
  TransactionDatabase db(100);
  TransactionId id0 = db.Add(Transaction({1, 2}));
  TransactionId id1 = db.Add(Transaction({3}));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Get(id0), Transaction({1, 2}));
  EXPECT_EQ(db.Get(id1), Transaction({3}));
}

TEST(DatabaseTest, RejectsItemsOutsideUniverse) {
  TransactionDatabase db(10);
  EXPECT_DEATH(db.Add(Transaction({10})), "universe");
}

TEST(DatabaseTest, AverageTransactionSize) {
  TransactionDatabase db(100);
  EXPECT_DOUBLE_EQ(db.AverageTransactionSize(), 0.0);
  db.Add(Transaction({1, 2}));
  db.Add(Transaction({3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(db.AverageTransactionSize(), 3.0);
  EXPECT_EQ(db.TotalItemOccurrences(), 6u);
}

TEST(DatabaseTest, DatasetNameFormatting) {
  EXPECT_EQ(DatasetName(10, 6, 800'000), "T10.I6.D800K");
  EXPECT_EQ(DatasetName(10, 4, 100'000), "T10.I4.D100K");
  EXPECT_EQ(DatasetName(5, 6, 2'000'000), "T5.I6.D2M");
  EXPECT_EQ(DatasetName(12, 6, 1234), "T12.I6.D1234");
}

}  // namespace
}  // namespace mbi
