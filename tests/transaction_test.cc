#include "txn/transaction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "txn/database.h"

namespace mbi {
namespace {

TEST(TransactionTest, SortsAndDeduplicatesOnConstruction) {
  Transaction t({9, 1, 5, 1, 9});
  EXPECT_EQ(t.items(), (std::vector<ItemId>{1, 5, 9}));
  EXPECT_EQ(t.size(), 3u);
}

TEST(TransactionTest, EmptyTransaction) {
  Transaction t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Contains(0));
}

TEST(TransactionTest, Contains) {
  Transaction t({2, 6, 17, 20});
  EXPECT_TRUE(t.Contains(2));
  EXPECT_TRUE(t.Contains(20));
  EXPECT_FALSE(t.Contains(3));
}

TEST(TransactionTest, ContainsAll) {
  Transaction t({2, 6, 17, 20});
  EXPECT_TRUE(t.ContainsAll(Transaction({6, 20})));
  EXPECT_TRUE(t.ContainsAll(Transaction{}));
  EXPECT_FALSE(t.ContainsAll(Transaction({6, 21})));
}

TEST(TransactionTest, MatchCountIsIntersectionSize) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4, 5});
  EXPECT_EQ(MatchCount(a, b), 2u);
  EXPECT_EQ(MatchCount(b, a), 2u);
  EXPECT_EQ(MatchCount(a, a), 4u);
  EXPECT_EQ(MatchCount(a, Transaction{}), 0u);
}

TEST(TransactionTest, HammingDistanceIsSymmetricDifferenceSize) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4, 5});
  EXPECT_EQ(HammingDistance(a, b), 3u);  // {1,2} and {5}.
  EXPECT_EQ(HammingDistance(b, a), 3u);
  EXPECT_EQ(HammingDistance(a, a), 0u);
  EXPECT_EQ(HammingDistance(a, Transaction{}), 4u);
}

TEST(TransactionTest, MatchAndHammingAgreeWithSeparateFunctions) {
  Transaction a({1, 5, 7, 10, 12});
  Transaction b({2, 5, 10, 13});
  size_t match = 0, hamming = 0;
  MatchAndHamming(a, b, &match, &hamming);
  EXPECT_EQ(match, MatchCount(a, b));
  EXPECT_EQ(hamming, HammingDistance(a, b));
}

TEST(TransactionTest, SetOperations) {
  Transaction a({1, 2, 3});
  Transaction b({2, 3, 4});
  EXPECT_EQ(Intersect(a, b), Transaction({2, 3}));
  EXPECT_EQ(Union(a, b), Transaction({1, 2, 3, 4}));
  EXPECT_EQ(Difference(a, b), Transaction({1}));
  EXPECT_EQ(Difference(b, a), Transaction({4}));
}

TEST(TransactionTest, CosineMatchesDefinition) {
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4});
  // x = 2, #a = 4, #b = 2 -> 2 / (2 * sqrt(2)).
  EXPECT_DOUBLE_EQ(CosineBetween(a, b), 2.0 / (2.0 * std::sqrt(2.0)));
  EXPECT_DOUBLE_EQ(CosineBetween(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineBetween(a, Transaction{}), 0.0);
}

TEST(TransactionTest, ToStringRendersSortedItems) {
  EXPECT_EQ(Transaction({3, 1, 2}).ToString(), "{1, 2, 3}");
  EXPECT_EQ(Transaction{}.ToString(), "{}");
}

TEST(DatabaseTest, AddAndGet) {
  TransactionDatabase db(100);
  TransactionId id0 = db.Add(Transaction({1, 2}));
  TransactionId id1 = db.Add(Transaction({3}));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Get(id0), Transaction({1, 2}));
  EXPECT_EQ(db.Get(id1), Transaction({3}));
}

TEST(DatabaseTest, RejectsItemsOutsideUniverse) {
  TransactionDatabase db(10);
  EXPECT_DEATH(db.Add(Transaction({10})), "universe");
}

TEST(DatabaseTest, AverageTransactionSize) {
  TransactionDatabase db(100);
  EXPECT_DOUBLE_EQ(db.AverageTransactionSize(), 0.0);
  db.Add(Transaction({1, 2}));
  db.Add(Transaction({3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(db.AverageTransactionSize(), 3.0);
  EXPECT_EQ(db.TotalItemOccurrences(), 6u);
}

TEST(DatabaseTest, DatasetNameFormatting) {
  EXPECT_EQ(DatasetName(10, 6, 800'000), "T10.I6.D800K");
  EXPECT_EQ(DatasetName(10, 4, 100'000), "T10.I4.D100K");
  EXPECT_EQ(DatasetName(5, 6, 2'000'000), "T5.I6.D2M");
  EXPECT_EQ(DatasetName(12, 6, 1234), "T12.I6.D1234");
}

}  // namespace
}  // namespace mbi
