#include "baseline/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/sequential_scan.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/bitset.h"

namespace mbi {
namespace {

// --- Bitset ---

TEST(BitsetTest, SetGetClearCount) {
  Bitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Get(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, BooleanCountOperations) {
  Bitset a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);   // Evens.
  for (size_t i = 0; i < 100; i += 3) b.Set(i);   // Multiples of 3.
  EXPECT_EQ(Bitset::AndCount(a, b), 17u);     // Multiples of 6 in [0,100).
  EXPECT_EQ(Bitset::AndNotCount(a, b), 33u);  // Evens not multiples of 3.
  EXPECT_EQ(Bitset::XorCount(a, b), 50u - 17u + 34u - 17u);
  a |= b;
  EXPECT_EQ(a.Count(), 50u + 34u - 17u);
}

TEST(BitsetTest, SizeMismatchAborts) {
  Bitset a(10), b(11);
  EXPECT_DEATH(Bitset::AndCount(a, b), "");
}

// --- BinaryRTree ---

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 801,
                                     uint32_t universe = 200) {
  QuestGeneratorConfig config;
  config.universe_size = universe;
  config.num_large_itemsets = 50;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 8.0;
  config.seed = seed;
  return config;
}

TEST(BinaryRTreeTest, ExactNearestNeighborMatchesScan) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(1500);
  BinaryRTree tree(&db, RTreeConfig{});
  SequentialScanner scanner(&db);
  InverseHammingFamily family;

  for (int q = 0; q < 10; ++q) {
    Transaction target = generator.NextTransaction();
    auto result = tree.FindKNearestHamming(target, 3);
    auto oracle = scanner.FindKNearest(target, family, 3);
    ASSERT_EQ(result.neighbors.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      // The tree reports distance negated; the oracle reports 1/y. Both must
      // rank the same Hamming distances.
      size_t tree_distance =
          static_cast<size_t>(-result.neighbors[i].similarity);
      size_t oracle_distance =
          HammingDistance(target, db.Get(oracle[i].id));
      EXPECT_EQ(tree_distance, oracle_distance) << "query " << q << " rank "
                                                << i;
    }
  }
}

TEST(BinaryRTreeTest, KLargerThanDatabase) {
  QuestGenerator generator(GeneratorConfig(809));
  TransactionDatabase db = generator.GenerateDatabase(10);
  BinaryRTree tree(&db, RTreeConfig{});
  auto result = tree.FindKNearestHamming(generator.NextTransaction(), 50);
  EXPECT_EQ(result.neighbors.size(), 10u);
}

TEST(BinaryRTreeTest, NeighborsSortedByAscendingDistance) {
  QuestGenerator generator(GeneratorConfig(811));
  TransactionDatabase db = generator.GenerateDatabase(800);
  BinaryRTree tree(&db, RTreeConfig{});
  auto result = tree.FindKNearestHamming(generator.NextTransaction(), 8);
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_GE(result.neighbors[i - 1].similarity,
              result.neighbors[i].similarity);
  }
}

TEST(BinaryRTreeTest, TreeShapeIsSane) {
  QuestGenerator generator(GeneratorConfig(821));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  RTreeConfig config;
  config.max_node_entries = 16;
  config.min_node_entries = 4;
  BinaryRTree tree(&db, config);
  auto stats = tree.ComputeTreeStats();
  EXPECT_GE(stats.height, 3u);
  EXPECT_GT(stats.leaf_nodes, 2000u / 16);
  EXPECT_GT(stats.internal_nodes, 0u);
}

TEST(BinaryRTreeTest, SignatureTablePrunesFarBetterOnBasketData) {
  // The comparison behind the paper's rejection of spatial indexes: on
  // sparse high-dimensional basket data the R-tree's MBRs saturate (most
  // dimensions free a level or two up), so MINDIST pruning is weak next to
  // the signature table's supercoordinate bounds on the very same database
  // and queries.
  QuestGenerator generator(GeneratorConfig(823, 500));
  TransactionDatabase db = generator.GenerateDatabase(4000);
  BinaryRTree tree(&db, RTreeConfig{});

  IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  InverseHammingFamily family;

  double rtree_access = 0.0, table_access = 0.0;
  auto queries = generator.GenerateQueries(10);
  for (const Transaction& target : queries) {
    rtree_access += tree.FindKNearestHamming(target, 1).stats
                        .AccessedFraction();
    table_access +=
        engine.FindNearest(target, family).stats.AccessedFraction();
  }
  EXPECT_GT(rtree_access, 2.0 * table_access);

  // MBR saturation measure: a root child's box is free in *dozens* of
  // dimensions (many orders of magnitude more volume than the few-item
  // baskets it holds), even though items that never occur dilute the
  // fraction over the whole universe.
  auto stats = tree.ComputeTreeStats();
  EXPECT_GT(stats.root_child_free_dim_fraction, 0.05);
  EXPECT_LT(stats.root_child_free_dim_fraction, 1.0);
}

TEST(BinaryRTreeTest, StatsAccounting) {
  QuestGenerator generator(GeneratorConfig(829));
  TransactionDatabase db = generator.GenerateDatabase(500);
  BinaryRTree tree(&db, RTreeConfig{});
  auto result = tree.FindKNearestHamming(generator.NextTransaction(), 1);
  EXPECT_EQ(result.stats.database_size, 500u);
  EXPECT_GT(result.stats.nodes_visited, 0u);
  EXPECT_LE(result.stats.transactions_evaluated, 500u);
  EXPECT_GT(result.stats.transactions_evaluated, 0u);
}

TEST(BinaryRTreeTest, EmptyDatabase) {
  TransactionDatabase db(50);
  BinaryRTree tree(&db, RTreeConfig{});
  auto result = tree.FindKNearestHamming(Transaction({1, 2}), 3);
  EXPECT_TRUE(result.neighbors.empty());
}

}  // namespace
}  // namespace mbi
