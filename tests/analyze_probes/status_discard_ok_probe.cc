// mbi-analyze probe: Status-consumption check must stay SILENT here.
//
// One site per sanctioned consumption pattern: tested with ok(),
// propagated with MBI_RETURN_IF_ERROR, explicitly dropped with (void) /
// static_cast<void>, and explicitly dropped with IgnoreError().
#include <cstdint>

#include "util/status.h"

namespace mbi_probe {

mbi::Status MightFail(int v) {
  if (v < 0) return mbi::Status::InvalidArgument("negative");
  return mbi::Status::Ok();
}

mbi::StatusOr<int> MightProduce(int v) {
  if (v < 0) return mbi::Status::InvalidArgument("negative");
  return v * 2;
}

int Tested(int v) {
  mbi::Status s = MightFail(v);
  if (!s.ok()) return -1;
  auto produced = MightProduce(v);
  return produced.ok() ? *produced : -1;
}

mbi::Status Propagated(int v) {
  MBI_RETURN_IF_ERROR(MightFail(v));
  return mbi::Status::Ok();
}

void ExplicitlyDropped(int v) {
  (void)MightFail(v);              // sanctioned explicit drop
  static_cast<void>(MightFail(v));  // sanctioned explicit drop
  MightFail(v).IgnoreError();       // sanctioned explicit drop
}

}  // namespace mbi_probe
