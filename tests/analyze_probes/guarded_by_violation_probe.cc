// mbi-analyze probe: guarded-by completeness check MUST flag this TU.
//
// This is the gap -Wthread-safety leaves open: the annotations that exist
// are verified, but a member that was never annotated is invisible to it.
// Expected findings (check = guarded-by):
//   * UnguardedCounter::hits_      (plain mutable state, no annotation)
//   * UnguardedCounter::last_key_  (same, second member proves per-field
//                                   granularity rather than per-class)
#include <cstdint>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mbi_probe {

class UnguardedCounter {
 public:
  void Record(uint64_t key) {
    mbi::MutexLock lock(&mu_);
    ++hits_;
    last_key_ = key;
  }

  uint64_t hits() const {
    mbi::MutexLock lock(&mu_);
    return hits_;
  }

 private:
  mutable mbi::Mutex mu_;
  uint64_t hits_ = 0;      // deliberately unannotated
  uint64_t last_key_ = 0;  // deliberately unannotated
};

uint64_t Drive(uint64_t key) {
  UnguardedCounter c;
  c.Record(key);
  return c.hits();
}

}  // namespace mbi_probe
