// mbi-analyze probe: budget-poll reachability check must stay SILENT here.
//
// One loop per sanctioned pattern: compile-time-bounded trip count, a
// direct QueryBudget poll in the loop, an interprocedural poll through
// a helper (the poll closure must see through the call), a chunk loop
// nested inside a polling loop (runs between two polls by construction),
// and a helper invoked only from inside a polling loop (its loops are the
// polling loop's per-iteration work — no descent).
#include <cstddef>
#include <cstdint>

#include "core/query_budget.h"

namespace mbi_probe {

inline bool PollingHelper(const mbi::QueryBudget& budget, size_t scanned) {
  return budget.cancelled() || budget.deadline_expired() ||
         scanned >= budget.max_entries;
}

uint64_t ScanWithPolls(const uint64_t* rows, size_t n,
                       const mbi::QueryBudget& budget) {
  uint64_t acc = 0;
  for (size_t i = 0; i < 8; ++i) {  // compile-time bounded: no poll needed
    acc ^= rows[i % (n + 1)];
  }
  for (size_t i = 0; i < n; ++i) {  // direct poll
    if (budget.cancelled() || budget.deadline_expired()) break;
    acc += rows[i];
  }
  for (size_t i = 0; i < n; ++i) {  // poll via helper
    if (PollingHelper(budget, i)) break;
    acc += rows[i] * 3;
  }
  return acc;
}

// Called only from inside the polling chunk loop below: the runtime-bounded
// loop in here is between-poll work at the documented poll granularity, so
// the check must not descend into it from that call site.
inline uint64_t SumChunk(const uint64_t* rows, size_t begin, size_t end) {
  uint64_t acc = 0;
  for (size_t i = begin; i < end; ++i) acc += rows[i];
  return acc;
}

uint64_t ChunkedScan(const uint64_t* rows, size_t n,
                     const mbi::QueryBudget& budget) {
  uint64_t acc = 0;
  for (size_t begin = 0; begin < n; begin += 64) {  // polls between chunks
    if (budget.cancelled() || budget.deadline_expired()) break;
    const size_t end = begin + 64 < n ? begin + 64 : n;
    for (size_t i = begin; i < end; ++i) {  // nested in a polling loop: ok
      acc ^= rows[i];
    }
    acc += SumChunk(rows, begin, end);
  }
  return acc;
}

}  // namespace mbi_probe
