// mbi-analyze probe: guarded-by completeness check must stay SILENT here.
//
// One member per sanctioned category: MBI_GUARDED_BY-annotated state,
// std::atomic, const configuration, the capability itself, and a CondVar
// (self-synchronizing primitive).
#include <atomic>
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mbi_probe {

class GuardedCounter {
 public:
  explicit GuardedCounter(uint64_t limit) : limit_(limit) {}

  bool Record() {
    mbi::MutexLock lock(&mu_);
    if (hits_ >= limit_) return false;
    ++hits_;
    fast_hits_.fetch_add(1, std::memory_order_relaxed);
    cv_.NotifyOne();
    return true;
  }

  uint64_t fast_hits() const {
    return fast_hits_.load(std::memory_order_relaxed);
  }

 private:
  mutable mbi::Mutex mu_;
  mbi::CondVar cv_;
  const uint64_t limit_;
  uint64_t hits_ MBI_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> fast_hits_{0};
};

bool Drive() {
  GuardedCounter c(4);
  return c.Record() && c.fast_hits() == 1;
}

}  // namespace mbi_probe
