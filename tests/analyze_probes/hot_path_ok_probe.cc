// mbi-analyze probe: hot-path reachability check must stay SILENT here.
//
// Exercises every sanctioned pattern of the MBI_HOT contract
// (util/hot_path.h): pure arithmetic helpers, memcpy/popcount-style leaf
// work, amortized growth of a caller-owned buffer (push_back/reserve are a
// traversal boundary), and non-blocking TryLock.
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/hot_path.h"
#include "util/mutex.h"

namespace mbi_probe {

inline uint64_t PureLeaf(uint64_t x) { return x * 2654435761u; }

inline uint64_t ChainedHelper(uint64_t x) { return PureLeaf(x) ^ (x >> 7); }

inline void CopyLeaf(uint64_t* dst, const uint64_t* src, size_t n) {
  std::memcpy(dst, src, n * sizeof(uint64_t));
}

mbi::Mutex g_stats_mu;

inline bool TryRecord() {
  if (g_stats_mu.TryLock()) {  // non-blocking: allowed on hot paths
    g_stats_mu.Unlock();
    return true;
  }
  return false;
}

MBI_HOT uint64_t HotAccumulate(const uint64_t* src, size_t n,
                               std::vector<uint64_t>* scratch) {
  // Amortized growth of the caller-owned scratch buffer is sanctioned.
  scratch->reserve(n);
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += ChainedHelper(src[i]);
    scratch->push_back(acc);
  }
  if (!scratch->empty()) CopyLeaf(scratch->data(), src, 1);
  (void)TryRecord();
  return acc;
}

}  // namespace mbi_probe
