// mbi-analyze probe: Status-consumption check MUST flag this TU.
//
// Every discard here lives in a context the class-level [[nodiscard]]
// attribute does not diagnose (or only warns about). Expected findings
// (check = status-discard):
//   * comma-operator LHS discard in CommaDrop
//   * both ternary arms discarded in TernaryDrop
//   * plain statement discard in StatementDrop (no (void) sanction)
//   * discarded StatusOr<int> in StatusOrDrop
#include <cstdint>

#include "util/status.h"

namespace mbi_probe {

mbi::Status MightFail(int v) {
  if (v < 0) return mbi::Status::InvalidArgument("negative");
  return mbi::Status::Ok();
}

mbi::StatusOr<int> MightProduce(int v) {
  if (v < 0) return mbi::Status::InvalidArgument("negative");
  return v * 2;
}

int CommaDrop(int v) {
  int r = (MightFail(v), v + 1);  // comma LHS silently drops the Status
  return r;
}

void TernaryDrop(int v) {
  v > 0 ? MightFail(v) : MightFail(-v);  // both arms discarded
}

void StatementDrop(int v) {
  MightFail(v);  // bare statement discard, no sanction token
}

void StatusOrDrop(int v) {
  MightProduce(v);  // discarded StatusOr
}

}  // namespace mbi_probe
