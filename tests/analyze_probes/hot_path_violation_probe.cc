// mbi-analyze probe: hot-path reachability check MUST flag this TU.
//
// Every violation here is at least one call frame away from the MBI_HOT
// entry point, which is exactly what the retired regex lint could not see.
// Expected findings (check = hot-path):
//   * allocation      : HotEntry -> DeepHelper -> AllocatingLeaf -> operator new
//   * blocking lock   : HotEntry -> LockingLeaf -> mbi::Mutex::Lock
//   * throw           : HotEntry -> ThrowingLeaf -> throw
//   * io              : HotEntry -> IoLeaf -> fopen
#include <cstdio>
#include <vector>

#include "util/hot_path.h"
#include "util/mutex.h"

namespace mbi_probe {

int* AllocatingLeaf(int n) {
  return new int[static_cast<unsigned>(n)];  // reachable allocation
}

int* DeepHelper(int n) { return AllocatingLeaf(n + 1); }

mbi::Mutex g_mu;

void LockingLeaf() {
  g_mu.Lock();  // blocking acquire on a hot path
  g_mu.Unlock();
}

int ThrowingLeaf(int n) {
  if (n < 0) throw n;  // throw reachable from a hot entry
  return n;
}

long IoLeaf(const char* path) {
  std::FILE* f = std::fopen(path, "rb");  // I/O outside the Env seam
  if (f == nullptr) return -1;
  std::fclose(f);
  return 0;
}

MBI_HOT int HotEntry(int n, const char* path) {
  int* p = DeepHelper(n);
  LockingLeaf();
  int v = ThrowingLeaf(n) + p[0];
  delete[] p;
  return v + static_cast<int>(IoLeaf(path));
}

}  // namespace mbi_probe
