// mbi-analyze probe: budget-poll reachability check MUST flag this TU.
//
// Expected findings (check = budget-poll):
//   * the runtime-bounded scan loop in ScanWithoutPolling (never polls)
//   * the loop in ScanViaHelper whose only call is a helper that does not
//     poll either (proves the check is interprocedural, not lexical)
//   * the unbounded inner loop in BoundedOuterUnboundedInner: a bounded
//     enclosing loop does NOT sanction unbounded non-polling work inside it
//     (only a *polling* ancestor does)
#include <cstddef>
#include <cstdint>

#include "core/query_budget.h"

namespace mbi_probe {

inline uint64_t NonPollingHelper(uint64_t x) { return x ^ (x >> 9); }

uint64_t ScanWithoutPolling(const uint64_t* rows, size_t n,
                            const mbi::QueryBudget& budget) {
  uint64_t acc = budget.limited() ? 1u : 0u;
  for (size_t i = 0; i < n; ++i) {  // unbounded, never polls the budget
    acc += rows[i];
  }
  return acc;
}

uint64_t ScanViaHelper(const uint64_t* rows, size_t n,
                       const mbi::QueryBudget& budget) {
  uint64_t acc = budget.limited() ? 1u : 0u;
  for (size_t i = 0; i < n; ++i) {  // helper below never reaches a poll
    acc += NonPollingHelper(rows[i]);
  }
  return acc;
}

uint64_t BoundedOuterUnboundedInner(const uint64_t* rows, size_t n,
                                    const mbi::QueryBudget& budget) {
  uint64_t acc = budget.limited() ? 1u : 0u;
  for (size_t r = 0; r < 4; ++r) {    // bounded outer: fine on its own
    for (size_t i = 0; i < n; ++i) {  // unbounded, non-polling: must flag
      acc += rows[i] + r;
    }
  }
  return acc;
}

}  // namespace mbi_probe
