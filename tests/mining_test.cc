#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/support_counter.h"
#include "txn/database.h"

namespace mbi {
namespace {

TransactionDatabase TinyDatabase() {
  TransactionDatabase db(6);
  db.Add(Transaction({0, 1, 2}));
  db.Add(Transaction({0, 1}));
  db.Add(Transaction({0, 2}));
  db.Add(Transaction({3}));
  db.Add(Transaction({0, 1, 2, 3}));
  return db;
}

// --- SupportCounter ---

TEST(SupportCounterTest, ItemCounts) {
  SupportCounter supports(TinyDatabase());
  EXPECT_EQ(supports.ItemCount(0), 4u);
  EXPECT_EQ(supports.ItemCount(1), 3u);
  EXPECT_EQ(supports.ItemCount(2), 3u);
  EXPECT_EQ(supports.ItemCount(3), 2u);
  EXPECT_EQ(supports.ItemCount(4), 0u);
  EXPECT_DOUBLE_EQ(supports.ItemSupport(0), 0.8);
}

TEST(SupportCounterTest, PairCountsSymmetric) {
  SupportCounter supports(TinyDatabase());
  EXPECT_EQ(supports.PairCount(0, 1), 3u);
  EXPECT_EQ(supports.PairCount(1, 0), 3u);
  EXPECT_EQ(supports.PairCount(0, 2), 3u);
  EXPECT_EQ(supports.PairCount(1, 2), 2u);
  EXPECT_EQ(supports.PairCount(0, 3), 1u);
  EXPECT_EQ(supports.PairCount(4, 5), 0u);
  EXPECT_DOUBLE_EQ(supports.PairSupport(0, 1), 0.6);
}

TEST(SupportCounterTest, PairsWithMinCountFiltersAndReportsAll) {
  SupportCounter supports(TinyDatabase());
  auto pairs = supports.PairsWithMinCount(2);
  std::map<std::pair<ItemId, ItemId>, uint64_t> found;
  for (const auto& entry : pairs) found[{entry.a, entry.b}] = entry.count;
  // Qualifying pairs: (0,1)=3, (0,2)=3, (1,2)=2; all pairs with item 3 occur
  // only once and must be filtered out.
  EXPECT_EQ(found.size(), 3u);
  EXPECT_EQ((found[{0, 1}]), 3u);
  EXPECT_EQ((found[{0, 2}]), 3u);
  EXPECT_EQ((found[{1, 2}]), 2u);
  EXPECT_EQ(found.count({0, 3}), 0u);
  EXPECT_EQ(found.count({2, 3}), 0u);
}

TEST(SupportCounterTest, TriangularIndexingCoversAllPairsExactly) {
  // Cross-check the dense triangular layout against a brute-force recount
  // on generated data (also exercises every index of the triangle).
  QuestGeneratorConfig config;
  config.universe_size = 40;
  config.num_large_itemsets = 30;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 8.0;
  config.seed = 21;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(500);
  SupportCounter supports(db);

  for (ItemId a = 0; a < db.universe_size(); ++a) {
    for (ItemId b = a + 1; b < db.universe_size(); ++b) {
      uint64_t brute = 0;
      for (const auto& t : db.transactions()) {
        if (t.Contains(a) && t.Contains(b)) ++brute;
      }
      ASSERT_EQ(supports.PairCount(a, b), brute)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(SupportCounterTest, EmptyDatabase) {
  TransactionDatabase db(5);
  SupportCounter supports(db);
  EXPECT_EQ(supports.ItemCount(0), 0u);
  EXPECT_DOUBLE_EQ(supports.ItemSupport(0), 0.0);
  EXPECT_DOUBLE_EQ(supports.PairSupport(0, 1), 0.0);
}

// --- Apriori ---

TEST(AprioriTest, FindsFrequentItemsetsOnTinyDatabase) {
  AprioriConfig config;
  config.min_support = 0.6;  // Count >= 3 of 5.
  auto itemsets = MineFrequentItemsets(TinyDatabase(), config);

  std::map<std::vector<ItemId>, uint64_t> found;
  for (const auto& itemset : itemsets) found[itemset.items] = itemset.count;

  EXPECT_EQ(found[{0}], 4u);
  EXPECT_EQ(found[{1}], 3u);
  EXPECT_EQ(found[{2}], 3u);
  EXPECT_EQ(found.count({3}), 0u);  // Count 2 < 3.
  EXPECT_EQ((found[{0, 1}]), 3u);
  EXPECT_EQ((found[{0, 2}]), 3u);
  EXPECT_EQ(found.count({1, 2}), 0u);  // Count 2.
  EXPECT_EQ(found.count({0, 1, 2}), 0u);
}

TEST(AprioriTest, AgreesWithBruteForceOnGeneratedData) {
  QuestGeneratorConfig config;
  config.universe_size = 30;
  config.num_large_itemsets = 15;
  config.avg_itemset_size = 4.0;
  config.avg_transaction_size = 6.0;
  config.seed = 77;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(300);

  AprioriConfig apriori;
  apriori.min_support = 0.05;
  auto mined = MineFrequentItemsets(db, apriori);
  const uint64_t min_count = 15;  // ceil(0.05 * 300).

  std::map<std::vector<ItemId>, uint64_t> by_items;
  for (const auto& itemset : mined) {
    // Counts must be exact.
    uint64_t brute = 0;
    for (const auto& t : db.transactions()) {
      if (t.ContainsAll(Transaction(std::vector<ItemId>(itemset.items)))) {
        ++brute;
      }
    }
    EXPECT_EQ(itemset.count, brute);
    EXPECT_GE(itemset.count, min_count);
    by_items[itemset.items] = itemset.count;
  }

  // Completeness at sizes 1 and 2 by brute force.
  for (ItemId a = 0; a < db.universe_size(); ++a) {
    uint64_t count_a = 0;
    for (const auto& t : db.transactions()) count_a += t.Contains(a);
    EXPECT_EQ(by_items.count({a}) > 0, count_a >= min_count) << "item " << a;
    for (ItemId b = a + 1; b < db.universe_size(); ++b) {
      uint64_t count_ab = 0;
      for (const auto& t : db.transactions()) {
        if (t.Contains(a) && t.Contains(b)) ++count_ab;
      }
      EXPECT_EQ(by_items.count({a, b}) > 0, count_ab >= min_count)
          << "pair " << a << "," << b;
    }
  }
}

TEST(AprioriTest, DownwardClosureHolds) {
  QuestGeneratorConfig config;
  config.universe_size = 40;
  config.num_large_itemsets = 20;
  config.seed = 13;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(400);

  AprioriConfig apriori;
  apriori.min_support = 0.03;
  auto mined = MineFrequentItemsets(db, apriori);
  std::map<std::vector<ItemId>, uint64_t> by_items;
  for (const auto& itemset : mined) by_items[itemset.items] = itemset.count;

  for (const auto& itemset : mined) {
    if (itemset.items.size() < 2) continue;
    for (size_t drop = 0; drop < itemset.items.size(); ++drop) {
      std::vector<ItemId> subset;
      for (size_t i = 0; i < itemset.items.size(); ++i) {
        if (i != drop) subset.push_back(itemset.items[i]);
      }
      ASSERT_TRUE(by_items.count(subset))
          << "missing subset of a frequent itemset";
      EXPECT_GE(by_items[subset], itemset.count);
    }
  }
}

TEST(AprioriTest, MaxItemsetSizeCapsLevels) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.max_itemset_size = 1;
  auto itemsets = MineFrequentItemsets(TinyDatabase(), config);
  for (const auto& itemset : itemsets) EXPECT_EQ(itemset.items.size(), 1u);
}

TEST(AssociationRulesTest, ConfidenceAndSupport) {
  AprioriConfig config;
  config.min_support = 0.4;
  TransactionDatabase db = TinyDatabase();
  auto itemsets = MineFrequentItemsets(db, config);
  auto rules = GenerateAssociationRules(itemsets, db.size(), 0.9);

  // {1} => {0} has confidence 3/3 = 1.0 and support 0.6.
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent == std::vector<ItemId>{1} &&
        rule.consequent == std::vector<ItemId>{0}) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_DOUBLE_EQ(rule.support, 0.6);
    }
    EXPECT_GE(rule.confidence, 0.9);
  }
  EXPECT_TRUE(found);

  // {0} => {1} has confidence 3/4 < 0.9 and must be absent.
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.antecedent == std::vector<ItemId>{0} &&
                 rule.consequent == std::vector<ItemId>{1});
  }
}

TEST(AprioriTest, PlantedItemsetsSurfaceAsFrequent) {
  // The generator's "potentially large itemsets" with high die weights must
  // be recoverable as frequent itemsets — the premise of the paper's data.
  QuestGeneratorConfig config;
  config.universe_size = 500;
  config.num_large_itemsets = 20;
  config.avg_itemset_size = 3.0;
  config.avg_transaction_size = 8.0;
  config.seed = 55;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(2000);

  AprioriConfig apriori;
  apriori.min_support = 0.01;
  apriori.max_itemset_size = 2;
  auto mined = MineFrequentItemsets(db, apriori);
  size_t frequent_pairs = 0;
  for (const auto& itemset : mined) {
    frequent_pairs += itemset.items.size() == 2;
  }
  // With only 20 planted itemsets, frequent pairs exist (inside itemsets)
  // and are not the full cross product (correlation, not uniformity).
  EXPECT_GT(frequent_pairs, 5u);
  EXPECT_LT(frequent_pairs, 2000u);
}

}  // namespace
}  // namespace mbi
