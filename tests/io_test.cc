#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/partition_io.h"
#include "gen/quest_generator.h"
#include "txn/database_io.h"

namespace mbi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatabaseIoTest, RoundTripsGeneratedDatabase) {
  QuestGeneratorConfig config;
  config.universe_size = 120;
  config.num_large_itemsets = 30;
  config.seed = 71;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(250);

  std::string path = TempPath("db_roundtrip.mbid");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->universe_size(), db.universe_size());
  ASSERT_EQ(loaded->size(), db.size());
  for (TransactionId id = 0; id < db.size(); ++id) {
    EXPECT_EQ(loaded->Get(id), db.Get(id));
  }
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, RoundTripsEmptyAndEmptyTransactions) {
  TransactionDatabase db(5);
  db.Add(Transaction{});
  db.Add(Transaction({0, 4}));
  std::string path = TempPath("db_empty.mbid");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Get(0), Transaction{});
  EXPECT_EQ(loaded->Get(1), Transaction({0, 4}));
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, MissingFileFails) {
  auto loaded = LoadDatabase(TempPath("does_not_exist.mbid"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseIoTest, RejectsCorruptMagic) {
  std::string path = TempPath("corrupt.mbid");
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("not a database file at all", file);
  std::fclose(file);
  auto loaded = LoadDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // The diagnostic names the artifact.
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, RejectsTruncatedPayload) {
  TransactionDatabase db(5);
  db.Add(Transaction({0, 1, 2}));
  std::string path = TempPath("truncated.mbid");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  // Chop the last 4 bytes off.
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fclose(file);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  auto loaded = LoadDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PartitionIoTest, RoundTrips) {
  SignaturePartition partition(3, {0, 1, 2, 0, 1, 2, 0});
  std::string path = TempPath("partition.mbsp");
  ASSERT_TRUE(SavePartition(partition, path).ok());
  auto loaded = LoadPartition(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->cardinality(), 3u);
  EXPECT_EQ(loaded->universe_size(), 7u);
  for (ItemId item = 0; item < 7; ++item) {
    EXPECT_EQ(loaded->SignatureOf(item), partition.SignatureOf(item));
  }
  std::remove(path.c_str());
}

TEST(PartitionIoTest, RejectsCorruptFile) {
  std::string path = TempPath("corrupt.mbsp");
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("garbage", file);
  std::fclose(file);
  auto loaded = LoadPartition(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PartitionIoTest, MissingFileFails) {
  auto loaded = LoadPartition(TempPath("no_such.mbsp"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mbi
