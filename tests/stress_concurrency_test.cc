// Concurrency stress tests aimed at the thread sanitizer build
// (-DMBI_SANITIZE=thread): they hammer the ThreadPool's Submit / ParallelFor /
// Wait surface from many threads at once and drive the read-only batch-query
// path against one shared engine. The assertions are deliberately simple
// (exact task counts, result equality with a sequential run) — the point is
// to give TSan interleavings to object to, not to re-test functionality.
//
// Sizes are kept modest: TSan slows execution ~5-15x and CI may be
// single-core, so each test targets well under a second uninstrumented.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

TEST(ThreadPoolStressTest, InterleavedSubmitAndWaitFromOwnerThread) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolStressTest, ProducersRaceAgainstWait) {
  // External producers keep submitting while the owner repeatedly calls
  // Wait(); Wait must observe a consistent in-flight count each time and the
  // final Wait (after join) must cover everything.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  producers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&pool, &counter, &stop] {
      while (!stop.load()) {
        for (int i = 0; i < 10; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    pool.Wait();
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  // Every task submitted before the final Wait must have run; the exact count
  // depends on scheduling but the pool must end idle and consistent.
  int after_wait = counter.load();
  pool.Wait();
  EXPECT_EQ(counter.load(), after_wait);
}

TEST(ThreadPoolStressTest, BackToBackParallelFors) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  for (int round = 0; round < 25; ++round) {
    pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  }
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 25) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, ParallelForInterleavedWithSubmits) {
  // Mixing the two entry points stresses the shared in_flight_ accounting:
  // ParallelFor's internal Wait must not return while unrelated Submit tasks
  // are still running, and vice versa nothing may be lost.
  ThreadPool pool(4);
  std::atomic<int> submits{0};
  std::atomic<int> loops{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&submits] { submits.fetch_add(1); });
    }
    pool.ParallelFor(32, [&loops](size_t) { loops.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(submits.load(), 20 * 8);
  EXPECT_EQ(loops.load(), 20 * 32);
}

struct SharedCorpus {
  TransactionDatabase db;
  SignatureTable table;
  std::vector<Transaction> targets;
};

SharedCorpus MakeSharedCorpus() {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 50;
  config.avg_transaction_size = 8.0;
  config.seed = 7101;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(1500);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);
  std::vector<Transaction> targets = generator.GenerateQueries(24);
  return {std::move(db), std::move(table), std::move(targets)};
}

class SharedEngineStressTest : public ::testing::Test {
 protected:
  // One corpus for the whole suite: index construction is the expensive part
  // and these tests only ever read it (that read-only sharing is itself what
  // TSan is here to check).
  static const SharedCorpus& corpus() {
    static const SharedCorpus* shared = new SharedCorpus(MakeSharedCorpus());
    return *shared;
  }

  const TransactionDatabase& db_ = corpus().db;
  const SignatureTable& table_ = corpus().table;
  const std::vector<Transaction>& targets_ = corpus().targets;
};

TEST_F(SharedEngineStressTest, ConcurrentBatchesMatchSequentialAnswers) {
  BranchAndBoundEngine engine(&db_, &table_);
  MatchRatioFamily family;

  std::vector<NearestNeighborResult> sequential;
  sequential.reserve(targets_.size());
  for (const Transaction& target : targets_) {
    sequential.push_back(engine.FindKNearest(target, family, 5));
  }

  // Two batch runs race over the same engine, table, and simulated disk.
  std::vector<NearestNeighborResult> a, b;
  std::thread other([&] {
    b = FindKNearestBatch(engine, targets_, family, 5, {}, /*num_threads=*/3);
  });
  a = FindKNearestBatch(engine, targets_, family, 5, {}, /*num_threads=*/3);
  other.join();

  for (const auto* batch : {&a, &b}) {
    ASSERT_EQ(batch->size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_EQ((*batch)[i].neighbors.size(), sequential[i].neighbors.size());
      for (size_t j = 0; j < sequential[i].neighbors.size(); ++j) {
        EXPECT_EQ((*batch)[i].neighbors[j].id, sequential[i].neighbors[j].id);
        EXPECT_EQ((*batch)[i].neighbors[j].similarity,
                  sequential[i].neighbors[j].similarity);
      }
    }
  }
}

TEST_F(SharedEngineStressTest, MixedFamiliesShareOneEngine) {
  BranchAndBoundEngine engine(&db_, &table_);
  MatchRatioFamily match_ratio;
  CosineFamily cosine;

  // Different similarity families concurrently against one table: the table
  // is similarity-agnostic, so nothing may be mutated per family.
  std::vector<NearestNeighborResult> a, b;
  std::thread other([&] {
    b = FindKNearestBatch(engine, targets_, cosine, 3, {}, 2);
  });
  a = FindKNearestBatch(engine, targets_, match_ratio, 3, {}, 2);
  other.join();

  ASSERT_EQ(a.size(), targets_.size());
  ASSERT_EQ(b.size(), targets_.size());
  for (size_t i = 0; i < targets_.size(); ++i) {
    auto expect_a = engine.FindKNearest(targets_[i], match_ratio, 3);
    auto expect_b = engine.FindKNearest(targets_[i], cosine, 3);
    ASSERT_EQ(a[i].neighbors.size(), expect_a.neighbors.size());
    ASSERT_EQ(b[i].neighbors.size(), expect_b.neighbors.size());
    for (size_t j = 0; j < expect_a.neighbors.size(); ++j) {
      EXPECT_EQ(a[i].neighbors[j].id, expect_a.neighbors[j].id);
    }
    for (size_t j = 0; j < expect_b.neighbors.size(); ++j) {
      EXPECT_EQ(b[i].neighbors[j].id, expect_b.neighbors[j].id);
    }
  }
}

TEST_F(SharedEngineStressTest, ParallelForDrivesAdHocQueries) {
  // Skip the batch helper entirely: raw ParallelFor over query indices, each
  // worker calling into the engine directly.
  BranchAndBoundEngine engine(&db_, &table_);
  MatchRatioFamily family;
  ThreadPool pool(3);
  std::vector<NearestNeighborResult> results(targets_.size());
  pool.ParallelFor(targets_.size(), [&](size_t i) {
    results[i] = engine.FindKNearest(targets_[i], family, 4);
  });
  for (size_t i = 0; i < targets_.size(); ++i) {
    auto expected = engine.FindKNearest(targets_[i], family, 4);
    ASSERT_EQ(results[i].neighbors.size(), expected.neighbors.size());
    for (size_t j = 0; j < expected.neighbors.size(); ++j) {
      EXPECT_EQ(results[i].neighbors[j].id, expected.neighbors[j].id);
    }
  }
}

}  // namespace
}  // namespace mbi
