// Tests for the annotated mbi::Mutex / MutexLock / CondVar capability
// wrappers (util/mutex.h) — the lock vocabulary every component in src/
// uses so that Clang's -Wthread-safety can prove the lock discipline at
// compile time.
//
// The runtime tests here prove the wrappers are deadlock-free under the
// patterns the codebase uses (scoped locking, predicate-loop waits,
// try-lock, handoff between threads). The *static* side — that an unguarded
// access to an MBI_GUARDED_BY field fails the thread-safety build — lives
// in the negative-compile block at the bottom of this file, driven by
// tools/check_thread_safety.sh.

#include "util/mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace mbi {
namespace {

TEST(MutexTest, LockUnlockIsReentrantAcrossScopes) {
  Mutex mu;
  int value = 0;
  // Sequential re-acquisition from one thread must not deadlock: each
  // MutexLock fully releases at scope end.
  for (int i = 0; i < 1000; ++i) {
    MutexLock lock(&mu);
    ++value;
  }
  {
    MutexLock lock(&mu);
    EXPECT_EQ(value, 1000);
  }
  // Manual Lock/Unlock interleaves with scoped locking.
  mu.Lock();
  ++value;
  mu.Unlock();
  MutexLock lock(&mu);
  EXPECT_EQ(value, 1001);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Held by this thread: another thread's TryLock must fail, not block.
  std::atomic<bool> contended{false};
  std::thread other([&] {
    if (!mu.TryLock()) {
      contended = true;
    } else {
      mu.Unlock();
    }
  });
  other.join();
  EXPECT_TRUE(contended.load());
  mu.Unlock();
  // Released: TryLock succeeds again.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, GuardedCounterIsRaceFreeAcrossThreads) {
  // The canonical GUARDED_BY shape, hammered from several threads; run
  // under TSan this also certifies the wrapper forwards to a real mutex.
  class Counter {
   public:
    void Increment() {
      MutexLock lock(&mu_);
      ++value_;
    }
    int value() const {
      MutexLock lock(&mu_);
      return value_;
    }

   private:
    mutable Mutex mu_;
    int value_ MBI_GUARDED_BY(mu_) = 0;
  };

  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(CondVarTest, WaitReleasesMutexWhileBlocked) {
  // If Wait failed to release the mutex, the producer below could never
  // acquire it and the test would deadlock — finishing at all is the proof.
  Mutex mu;
  CondVar cv;
  bool ready MBI_GUARDED_BY(mu) = false;
  int payload MBI_GUARDED_BY(mu) = 0;

  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_EQ(payload, 42);
  });
  {
    MutexLock lock(&mu);
    payload = 42;
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go MBI_GUARDED_BY(mu) = false;
  int woken MBI_GUARDED_BY(mu) = 0;

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(woken, kWaiters);
}

TEST(CondVarTest, PingPongHandoffDoesNotDeadlock) {
  // Two threads alternating strictly via one mutex + one condvar: the
  // tightest reacquisition loop the ThreadPool's worker/waiter pairing
  // produces. 2000 round trips complete or the test hangs (and the ctest
  // timeout flags it).
  Mutex mu;
  CondVar cv;
  int turn MBI_GUARDED_BY(mu) = 0;
  constexpr int kRounds = 2000;

  std::thread odd([&] {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(&mu);
      while (turn % 2 == 0) cv.Wait(&mu);
      ++turn;
      cv.NotifyOne();
    }
  });
  {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(&mu);
      while (turn % 2 == 1) cv.Wait(&mu);
      ++turn;
      cv.NotifyOne();
    }
  }
  odd.join();
  MutexLock lock(&mu);
  EXPECT_EQ(turn, 2 * kRounds);
}

TEST(MutexTest, AssertHeldCompilesAndIsFreeOfSideEffects) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // Analysis-only; must not touch the lock state.
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Negative-compile proof: with MBI_THREAD_SAFETY_NEGATIVE defined and a
// Clang `-Wthread-safety -Werror` build, this block MUST fail to compile —
// it reads and writes an MBI_GUARDED_BY field without holding its mutex.
// tools/check_thread_safety.sh compiles this file both ways and asserts the
// negative build errors out, proving the analysis is actually wired (a
// silently no-op'd macro set would pass the positive build too).
// ---------------------------------------------------------------------------
#ifdef MBI_THREAD_SAFETY_NEGATIVE
class Unguarded {
 public:
  int Read() const { return value_; }      // error: reading without mu_
  void Write(int v) { value_ = v; }        // error: writing without mu_

 private:
  mutable Mutex mu_;
  int value_ MBI_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, NegativeCompileWitness) {
  Unguarded unguarded;
  unguarded.Write(1);
  EXPECT_EQ(unguarded.Read(), 1);
}
#endif  // MBI_THREAD_SAFETY_NEGATIVE

}  // namespace
}  // namespace mbi
