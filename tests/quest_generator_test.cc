#include "gen/quest_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "mining/support_counter.h"

namespace mbi {
namespace {

QuestGeneratorConfig SmallConfig() {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 100;
  config.avg_itemset_size = 4.0;
  config.avg_transaction_size = 8.0;
  config.seed = 7;
  return config;
}

TEST(QuestGeneratorTest, DeterministicForSameSeed) {
  QuestGenerator a(SmallConfig());
  QuestGenerator b(SmallConfig());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextTransaction(), b.NextTransaction()) << "at " << i;
  }
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestGeneratorConfig config = SmallConfig();
  QuestGenerator a(config);
  config.seed = 8;
  QuestGenerator b(config);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextTransaction() == b.NextTransaction()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(QuestGeneratorTest, TransactionsRespectUniverse) {
  QuestGenerator generator(SmallConfig());
  for (int i = 0; i < 500; ++i) {
    Transaction t = generator.NextTransaction();
    EXPECT_FALSE(t.empty());
    EXPECT_LT(t.items().back(), SmallConfig().universe_size);
  }
}

TEST(QuestGeneratorTest, AverageTransactionSizeTracksParameter) {
  for (double target : {5.0, 10.0, 15.0}) {
    QuestGeneratorConfig config;
    config.universe_size = 1000;
    config.num_large_itemsets = 500;
    config.avg_itemset_size = 6.0;
    config.avg_transaction_size = target;
    config.seed = 99;
    QuestGenerator generator(config);
    TransactionDatabase db = generator.GenerateDatabase(4000);
    // The itemset spill mechanics overshoot the Poisson target when the
    // target is smaller than the mean itemset size (a whole instance is
    // force-assigned to an empty basket), so allow a generous band: the
    // paper's labels (T5/T10/T15) describe the target parameter.
    EXPECT_NEAR(db.AverageTransactionSize(), target,
                std::max(target * 0.25, 2.0))
        << "target " << target;
  }
}

TEST(QuestGeneratorTest, LargeItemsetsHaveConfiguredMeanSize) {
  QuestGeneratorConfig config = SmallConfig();
  config.num_large_itemsets = 2000;
  config.universe_size = 1000;
  QuestGenerator generator(config);
  double total = 0.0;
  for (const auto& itemset : generator.large_itemsets()) {
    EXPECT_GE(itemset.size(), 1u);
    total += static_cast<double>(itemset.size());
  }
  EXPECT_NEAR(total / config.num_large_itemsets, config.avg_itemset_size,
              config.avg_itemset_size * 0.15);
}

TEST(QuestGeneratorTest, SuccessiveItemsetsShareItems) {
  QuestGeneratorConfig config = SmallConfig();
  config.universe_size = 5000;  // Sparse universe: random overlap unlikely.
  config.num_large_itemsets = 500;
  config.avg_itemset_size = 6.0;
  QuestGenerator generator(config);
  const auto& itemsets = generator.large_itemsets();
  int with_overlap = 0;
  for (size_t i = 1; i < itemsets.size(); ++i) {
    if (MatchCount(itemsets[i - 1], itemsets[i]) > 0) ++with_overlap;
  }
  // The construction inherits ~half of each itemset from its predecessor.
  EXPECT_GT(with_overlap, static_cast<int>(itemsets.size()) / 2);
}

TEST(QuestGeneratorTest, NoiseLevelsAreClampedProbabilities) {
  QuestGenerator generator(SmallConfig());
  for (size_t i = 0; i < SmallConfig().num_large_itemsets; ++i) {
    EXPECT_GT(generator.noise_level(i), 0.0);
    EXPECT_LT(generator.noise_level(i), 1.0);
  }
}

TEST(QuestGeneratorTest, DataIsCorrelatedNotUniform) {
  // Items co-occurring inside planted itemsets must co-occur in transactions
  // far more often than independent items would.
  QuestGeneratorConfig config;
  config.universe_size = 1000;
  config.num_large_itemsets = 50;
  config.avg_itemset_size = 6.0;
  config.avg_transaction_size = 10.0;
  config.seed = 3;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(5000);
  SupportCounter supports(db);

  // Average pair support among pairs inside the first planted itemsets.
  double planted_pair_support = 0.0;
  int planted_pairs = 0;
  for (size_t s = 0; s < 10; ++s) {
    const auto& items = generator.large_itemsets()[s].items();
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        planted_pair_support += supports.PairSupport(items[i], items[j]);
        ++planted_pairs;
      }
    }
  }
  ASSERT_GT(planted_pairs, 0);
  planted_pair_support /= planted_pairs;

  // Expected support of an independent pair: (T/N)^2 = 1e-4.
  double independent = (10.0 / 1000.0) * (10.0 / 1000.0);
  EXPECT_GT(planted_pair_support, 10.0 * independent);
}

TEST(QuestGeneratorTest, GenerateQueriesContinuesTheStream) {
  QuestGenerator generator(SmallConfig());
  auto queries = generator.GenerateQueries(10);
  EXPECT_EQ(queries.size(), 10u);
  for (const auto& query : queries) EXPECT_FALSE(query.empty());
}

TEST(CorpusStatsTest, ComputesBasicStatistics) {
  TransactionDatabase db(10);
  db.Add(Transaction({0, 1}));
  db.Add(Transaction({1, 2, 3, 4}));
  CorpusStats stats = ComputeCorpusStats(db);
  EXPECT_EQ(stats.num_transactions, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_size, 3.0);
  EXPECT_EQ(stats.max_transaction_size, 4u);
  EXPECT_EQ(stats.distinct_items, 5u);
  EXPECT_DOUBLE_EQ(stats.density, 0.3);
}

}  // namespace
}  // namespace mbi
