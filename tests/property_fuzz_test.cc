#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/artifact_verify.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/partition_io.h"
#include "core/table_io.h"
#include "gen/quest_generator.h"
#include "txn/database_io.h"
#include "util/rng.h"

namespace mbi {
namespace {

/// Randomized differential testing: for many random dataset/index/parameter
/// combinations, the branch-and-bound engine must agree with the sequential
/// scan oracle — for the paper's three similarity functions and for randomly
/// generated *admissible* custom functions (monotone in matches, antitone in
/// Hamming distance by construction).

bool SimilarityEqual(double a, double b) {
  if (std::isinf(a) && std::isinf(b)) return std::signbit(a) == std::signbit(b);
  return a == b;
}

/// A random function of the form
///   f(x, y) = a·x − b·y + c·sqrt(x) − d·log(1 + y) + e·x/(1 + y)
/// with non-negative coefficients: every term is nondecreasing in x and
/// nonincreasing in y, so f is admissible.
std::unique_ptr<CustomFamily> RandomAdmissibleFamily(Rng* rng, int index) {
  double a = rng->UniformDouble() * 3.0;
  double b = rng->UniformDouble() * 3.0;
  double c = rng->UniformDouble() * 2.0;
  double d = rng->UniformDouble() * 2.0;
  double e = rng->UniformDouble() * 4.0;
  return std::make_unique<CustomFamily>(
      "random_admissible_" + std::to_string(index),
      [a, b, c, d, e](int x, int y) {
        return a * x - b * y + c * std::sqrt(static_cast<double>(x)) -
               d * std::log1p(static_cast<double>(y)) +
               e * x / (1.0 + static_cast<double>(y));
      });
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, EngineAgreesWithScanOracleOnRandomConfigurations) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);

  QuestGeneratorConfig config;
  config.universe_size = 100 + static_cast<uint32_t>(rng.UniformUint64(400));
  config.num_large_itemsets =
      20 + static_cast<uint32_t>(rng.UniformUint64(100));
  config.avg_itemset_size = 3.0 + rng.UniformDouble() * 5.0;
  config.avg_transaction_size = 5.0 + rng.UniformDouble() * 10.0;
  config.correlation_fraction = rng.UniformDouble() * 0.8;
  config.seed = seed;
  QuestGenerator generator(config);
  const uint64_t db_size = 300 + rng.UniformUint64(1200);
  TransactionDatabase db = generator.GenerateDatabase(db_size);

  IndexBuildConfig build;
  build.clustering.target_cardinality =
      5 + static_cast<uint32_t>(rng.UniformUint64(9));
  build.table.activation_threshold = 1 + static_cast<int>(rng.UniformUint64(2));
  build.use_balanced_partitioner = rng.Bernoulli(0.3);
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);

  // Assemble the function set: the paper's three plus two random admissible
  // functions.
  std::vector<std::unique_ptr<SimilarityFamily>> families;
  families.push_back(MakeSimilarityFamily("hamming"));
  families.push_back(MakeSimilarityFamily("match_ratio"));
  families.push_back(MakeSimilarityFamily("cosine"));
  families.push_back(RandomAdmissibleFamily(&rng, 0));
  families.push_back(RandomAdmissibleFamily(&rng, 1));

  for (int q = 0; q < 4; ++q) {
    Transaction target = generator.NextTransaction();
    for (const auto& family : families) {
      size_t k = 1 + rng.UniformUint64(7);
      auto result = engine.FindKNearest(target, *family, k);
      auto oracle = scanner.FindKNearest(target, *family, k);
      ASSERT_TRUE(result.guaranteed_exact)
          << "seed " << seed << " family " << family->name();
      ASSERT_EQ(result.neighbors.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_TRUE(SimilarityEqual(result.neighbors[i].similarity,
                                    oracle[i].similarity))
            << "seed " << seed << " family " << family->name() << " k=" << k
            << " rank " << i << ": " << result.neighbors[i].similarity
            << " vs " << oracle[i].similarity;
      }
    }
  }
}

TEST_P(FuzzTest, EarlyTerminationCertificatesNeverLie) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 7);

  QuestGeneratorConfig config;
  config.universe_size = 200 + static_cast<uint32_t>(rng.UniformUint64(300));
  config.num_large_itemsets = 50;
  config.avg_transaction_size = 6.0 + rng.UniformDouble() * 8.0;
  config.seed = seed + 1000;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(2000);

  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;

  for (int q = 0; q < 5; ++q) {
    Transaction target = generator.NextTransaction();
    auto oracle = scanner.FindKNearest(target, family, 1);
    SearchOptions options;
    options.max_access_fraction = 0.002 + rng.UniformDouble() * 0.05;
    auto result = engine.FindNearest(target, family, options);
    if (result.guaranteed_exact) {
      ASSERT_TRUE(SimilarityEqual(result.neighbors[0].similarity,
                                  oracle[0].similarity))
          << "seed " << seed << ": certificate lied";
    }
    // The uniform quality bound holds regardless.
    ASSERT_GE(std::max(result.neighbors[0].similarity,
                       result.best_unscanned_bound),
              oracle[0].similarity)
        << "seed " << seed;
  }
}

TEST_P(FuzzTest, RangeQueriesMatchOracleAtRandomThresholds) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31337 + 5);

  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_transaction_size = 8.0;
  config.seed = seed + 2000;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(1000);

  IndexBuildConfig build;
  build.clustering.target_cardinality = 9;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);

  for (const char* name : {"match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(name);
    for (int q = 0; q < 3; ++q) {
      Transaction target = generator.NextTransaction();
      double threshold = rng.UniformDouble() * 1.2;
      auto result = engine.FindInRange(target, *family, threshold);
      auto oracle = scanner.FindInRange(target, *family, threshold);
      ASSERT_TRUE(result.guaranteed_complete);
      ASSERT_EQ(result.matches.size(), oracle.size())
          << "seed " << seed << " " << name << " threshold " << threshold;
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(result.matches[i].id, oracle[i].id);
      }
    }
  }
}

// --- Corruption fuzz ----------------------------------------------------
//
// Loaders must return kCorruption — never crash, never abort, never hand
// back a plausible-but-wrong artifact — for ANY single-bit mutation or
// truncation of a valid artifact. This is the property that makes the
// quarantine path in engine/engine.h safe to rely on, and it runs under
// ASan/UBSan in the CI fault-injection job.

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  std::fseek(file, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    bytes.clear();
  }
  std::fclose(file);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  }
  ASSERT_EQ(std::fclose(file), 0);
}

/// Applies ~40 single-bit flips and ~12 truncations to the artifact at
/// `path` (restoring the clean bytes between mutations) and requires `load`
/// to report kCorruption for every one of them. The clean bytes are restored
/// on exit.
template <typename LoadFn>
void FuzzArtifact(const std::string& path, Rng* rng, LoadFn load) {
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  ASSERT_FALSE(clean.empty());
  {
    Status healthy = load();
    ASSERT_TRUE(healthy.ok()) << "fixture is broken: " << healthy.ToString();
  }

  std::vector<uint8_t> mutated = clean;
  for (int i = 0; i < 40; ++i) {
    const size_t byte = static_cast<size_t>(rng->UniformUint64(clean.size()));
    const uint8_t mask = static_cast<uint8_t>(1u << rng->UniformUint64(8));
    mutated[byte] ^= mask;
    WriteFileBytes(path, mutated);
    Status corrupt = load();
    ASSERT_FALSE(corrupt.ok())
        << path << ": flip at byte " << byte << " mask " << int{mask}
        << " loaded successfully";
    EXPECT_EQ(corrupt.code(), StatusCode::kCorruption)
        << path << ": flip at byte " << byte << ": " << corrupt.ToString();
    // `mbi verify` must survive the same damage (report or refuse, no crash).
    auto report = VerifyArtifact(path);
    if (report.ok()) {
      EXPECT_FALSE(report->Overall().ok());
    }
    mutated[byte] ^= mask;
  }

  for (int i = 0; i < 12; ++i) {
    const size_t keep = static_cast<size_t>(rng->UniformUint64(clean.size()));
    WriteFileBytes(path, std::vector<uint8_t>(clean.begin(),
                                              clean.begin() +
                                                  static_cast<long>(keep)));
    Status corrupt = load();
    ASSERT_FALSE(corrupt.ok())
        << path << ": truncation to " << keep << " bytes loaded successfully";
    EXPECT_EQ(corrupt.code(), StatusCode::kCorruption);
  }

  WriteFileBytes(path, clean);
}

TEST_P(FuzzTest, CorruptArtifactsAlwaysFailCleanly) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 48271 + 11);

  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 30;
  config.avg_transaction_size = 7.0;
  config.seed = seed + 5000;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(200);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);

  const std::string dir = ::testing::TempDir();
  const std::string db_path = dir + "/fuzz_" + std::to_string(seed) + ".mbid";
  const std::string part_path = dir + "/fuzz_" + std::to_string(seed) + ".mbsp";
  const std::string table_path =
      dir + "/fuzz_" + std::to_string(seed) + ".mbst";
  ASSERT_TRUE(SaveDatabase(db, db_path).ok());
  ASSERT_TRUE(SavePartition(table.partition(), part_path).ok());
  ASSERT_TRUE(SaveSignatureTable(table, table_path).ok());

  FuzzArtifact(db_path, &rng,
               [&] { return LoadDatabase(db_path).status(); });
  FuzzArtifact(part_path, &rng,
               [&] { return LoadPartition(part_path).status(); });
  FuzzArtifact(table_path, &rng,
               [&] { return LoadSignatureTable(table_path, db).status(); });

  std::remove(db_path.c_str());
  std::remove(part_path.c_str());
  std::remove(table_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mbi
