#include "core/bounds.h"

#include <gtest/gtest.h>

#include "core/clustering.h"
#include "core/signature_table.h"
#include "core/supercoordinate.h"
#include "gen/quest_generator.h"
#include "mining/support_counter.h"

namespace mbi {
namespace {

// --- Supercoordinate mechanics (the paper's §3 worked example) ---

TEST(SupercoordinateTest, PaperSection3Example) {
  // Items {1..20} partitioned into P = {1,2,4,6,8,11,18},
  // Q = {3,5,7,9,10,16,20}, R = {12,13,14,15,17,19}; transaction
  // T = {2,6,17,20} activates P, Q, R at r = 1 and only P at r = 2.
  std::vector<uint32_t> signature_of_item(21, 0);  // Index 0 unused.
  for (ItemId i : {1u, 2u, 4u, 6u, 8u, 11u, 18u}) signature_of_item[i] = 0;
  for (ItemId i : {3u, 5u, 7u, 9u, 10u, 16u, 20u}) signature_of_item[i] = 1;
  for (ItemId i : {12u, 13u, 14u, 15u, 17u, 19u}) signature_of_item[i] = 2;
  SignaturePartition partition(3, signature_of_item);

  Transaction t({2, 6, 17, 20});
  EXPECT_EQ(ComputeSupercoordinate(t, partition, 1), 0b111u);
  EXPECT_EQ(ComputeSupercoordinate(t, partition, 2), 0b001u);
  EXPECT_EQ(ComputeSupercoordinate(t, partition, 3), 0u);
}

TEST(SupercoordinateTest, FromCountsMatchesDirectComputation) {
  SignaturePartition partition(4, {0, 1, 2, 3, 0, 1, 2, 3});
  Transaction t({0, 4, 5, 3});
  auto counts = partition.CountsPerSignature(t);
  for (int r = 1; r <= 3; ++r) {
    EXPECT_EQ(SupercoordinateFromCounts(counts, r),
              ComputeSupercoordinate(t, partition, r));
  }
}

TEST(SupercoordinateTest, HelperFunctions) {
  EXPECT_EQ(ActivatedCount(0b1011u), 3);
  EXPECT_EQ(SupercoordinateToString(0b101u, 4), "1010");
  int match = 0, hamming = 0;
  SupercoordinateMatchAndHamming(0b1100u, 0b1010u, &match, &hamming);
  EXPECT_EQ(match, 1);    // Bit 3.
  EXPECT_EQ(hamming, 2);  // Bits 1 and 2.
}

// --- BoundCalculator formulas (paper §4.1) ---

TEST(BoundCalculatorTest, HandComputedExample) {
  // K = 3, r = 2, target counts r_j = {3, 1, 0}.
  BoundCalculator calc({3, 1, 0}, 2);

  // Entry 0b000: D = max(0,3-1) + max(0,1-1) + max(0,0-1) = 2;
  //              M = min(1,3) + min(1,1) + min(1,0) = 2.
  OptimisticBounds b000 = calc.Compute(0b000);
  EXPECT_EQ(b000.dist_lower, 2);
  EXPECT_EQ(b000.match_upper, 2);

  // Entry 0b111: D = max(0,2-3) + max(0,2-1) + max(0,2-0) = 3;
  //              M = 3 + 1 + 0 = 4.
  OptimisticBounds b111 = calc.Compute(0b111);
  EXPECT_EQ(b111.dist_lower, 3);
  EXPECT_EQ(b111.match_upper, 4);

  // Entry 0b001 (only S0 active): D = 0 (S0: r_0=3>=r) + 0 (S1: r_1-r+1=0)
  //              + 0 (S2: max(0, 0-2+1)) = 0; M = 3 + 1 + 0 = 4.
  OptimisticBounds b001 = calc.Compute(0b001);
  EXPECT_EQ(b001.dist_lower, 0);
  EXPECT_EQ(b001.match_upper, 4);
}

TEST(BoundCalculatorTest, ActivationThresholdOneZeroBitGivesZeroMatches) {
  // With r = 1, a 0 bit means the entry's transactions share no item of that
  // signature with anyone: min(r-1, r_j) = 0 matches contributed.
  BoundCalculator calc({4, 2}, 1);
  OptimisticBounds bounds = calc.Compute(0b00);
  EXPECT_EQ(bounds.match_upper, 0);
  EXPECT_EQ(bounds.dist_lower, 4 + 2);
}

TEST(BoundCalculatorTest, OptimisticSimilarityAppliesFunction) {
  BoundCalculator calc({3, 1, 0}, 2);
  InverseHammingSimilarity hamming;
  EXPECT_DOUBLE_EQ(calc.OptimisticSimilarity(0b000, hamming), 0.5);
  MatchRatioSimilarity ratio;
  EXPECT_DOUBLE_EQ(calc.OptimisticSimilarity(0b111, ratio), 4.0 / 3.0);
}

// --- The central invariant: admissibility. For every entry and every
// transaction indexed by it, M_opt >= x and D_opt <= y, hence
// f(M_opt, D_opt) >= f(x, y) for every admissible f (Lemma 2.1). Swept over
// activation thresholds and similarity families on generated data. ---

class BoundAdmissibilityTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(BoundAdmissibilityTest, OptimisticBoundsDominateEveryIndexedTransaction) {
  auto [activation_threshold, family_name] = GetParam();

  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = 23;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(1500);
  SupportCounter supports(db);
  ClusteringConfig clustering;
  clustering.target_cardinality = 8;
  SignaturePartition partition =
      BuildSignaturesSingleLinkage(supports, clustering);

  SignatureTableConfig table_config;
  table_config.activation_threshold = activation_threshold;
  SignatureTable table = SignatureTable::Build(db, partition, table_config);

  auto family = MakeSimilarityFamily(family_name);
  auto queries = generator.GenerateQueries(10);

  for (const Transaction& target : queries) {
    BoundCalculator calc(table.partition().CountsPerSignature(target),
                         activation_threshold);
    auto function = family->ForTarget(target);
    for (size_t e = 0; e < table.entries().size(); ++e) {
      OptimisticBounds bounds = calc.Compute(table.entries()[e].coordinate);
      double optimistic =
          function->Evaluate(bounds.match_upper, bounds.dist_lower);
      IoStats io;
      for (TransactionId id : table.FetchEntryTransactions(e, &io)) {
        size_t x = 0, y = 0;
        MatchAndHamming(target, db.Get(id), &x, &y);
        ASSERT_GE(bounds.match_upper, static_cast<int>(x))
            << "match bound violated for entry " << e << " tx " << id;
        ASSERT_LE(bounds.dist_lower, static_cast<int>(y))
            << "distance bound violated for entry " << e << " tx " << id;
        double actual = function->Evaluate(static_cast<int>(x),
                                           static_cast<int>(y));
        ASSERT_GE(optimistic, actual)
            << family_name << " bound not optimistic for entry " << e
            << " tx " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdsAndFamilies, BoundAdmissibilityTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values("hamming", "match_ratio", "cosine")));

}  // namespace
}  // namespace mbi
