#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "baseline/inverted_index.h"
#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "util/alloc_guard.h"
#include "util/deadline_clock.h"

namespace mbi {
namespace {

/// Deadlines, cancellation, and entry budgets: on expiry every query path
/// must return a *certified degraded answer* — never crash, never come back
/// structurally empty — whose certificate (QueryStats::certificate_bound)
/// upper-bounds everything the query did not look at (paper §4.2's
/// a-posteriori guarantee, Lemma 2.1).

constexpr double kInf = std::numeric_limits<double>::infinity();

TransactionDatabase MakeDatabase(size_t rows, uint64_t seed = 4242) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed;
  QuestGenerator generator(config);
  return generator.GenerateDatabase(rows);
}

SignatureTable BuildOver(const TransactionDatabase& db, uint32_t k = 8) {
  IndexBuildConfig build;
  build.clustering.target_cardinality = k;
  return BuildIndex(db, build);
}

Transaction QueryTarget(uint64_t seed = 77) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed;
  QuestGenerator generator(config);
  return generator.GenerateQueries(1)[0];
}

/// The certificate contract (Lemma 2.1 applied a posteriori): every true
/// top-k neighbor the degraded answer does NOT return must be bounded by
/// max(k-th returned similarity, certificate). Returned neighbors are
/// covered by being in the answer — an exact duplicate with +inf similarity
/// that the first scanned entry happened to hold is fine.
void ExpectCertificateDominates(const NearestNeighborResult& result,
                                const std::vector<Neighbor>& oracle,
                                size_t k) {
  ASSERT_FALSE(result.neighbors.empty())
      << "degraded answers must never be structurally empty";
  const double kth_found = result.neighbors.back().similarity;
  const double reachable = std::max(kth_found, result.stats.certificate_bound);
  const size_t limit = std::min(k, oracle.size());
  for (size_t i = 0; i < limit; ++i) {
    const bool returned = std::any_of(
        result.neighbors.begin(), result.neighbors.end(),
        [&](const Neighbor& n) { return n.id == oracle[i].id; });
    if (returned) continue;
    EXPECT_GE(reachable, oracle[i].similarity)
        << "certificate misses oracle neighbor " << i;
  }
}

TEST(QueryBudgetTest, TightestMergePicksEveryMinimum) {
  ManualClock clock(100.0);
  QueryBudget a;
  a.deadline_us = 500.0;
  QueryBudget b;
  b.max_entries = 7;
  b.clock = &clock;
  QueryBudget merged = QueryBudget::Tightest(a, b);
  EXPECT_EQ(merged.deadline_us, 500.0);
  EXPECT_EQ(merged.max_entries, 7u);
  EXPECT_EQ(merged.clock, &clock);
  EXPECT_TRUE(merged.limited());
  EXPECT_FALSE(QueryBudget{}.limited());
}

TEST(QueryBudgetTest, WithDeadlineAfterMsUsesTheInjectedClock) {
  ManualClock clock(1000.0);
  QueryBudget budget = QueryBudget::WithDeadlineAfterMs(2.0, &clock);
  EXPECT_DOUBLE_EQ(budget.deadline_us, 3000.0);
  EXPECT_FALSE(budget.deadline_expired());
  clock.AdvanceUs(2500.0);
  EXPECT_TRUE(budget.deadline_expired());
}

TEST(QueryBudgetTest, PreExpiredDeadlineStillAnswersWithCertificate) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner oracle_scanner(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();
  const size_t k = 5;

  ManualClock clock(1000.0);
  SearchOptions options;
  options.budget.clock = &clock;
  options.budget.deadline_us = 0.0;  // expired before the query even starts

  NearestNeighborResult result = engine.FindKNearest(target, family, k,
                                                     options);
  EXPECT_EQ(result.stats.termination, QueryTermination::kDeadline);
  EXPECT_FALSE(result.stats.is_exact);
  EXPECT_FALSE(result.guaranteed_exact);
  // Min-one-entry guarantee: exactly one entry was scanned before the
  // budget check was allowed to fire.
  EXPECT_EQ(result.stats.entries_scanned, 1u);
  ExpectCertificateDominates(result,
                             oracle_scanner.FindKNearest(target, family, k),
                             k);
}

TEST(QueryBudgetTest, ManualClockWalksTheQueryIntoItsDeadline) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  // Unbudgeted baseline: how many entries does the full query scan?
  NearestNeighborResult full = engine.FindKNearest(target, family, 5);
  ASSERT_GT(full.stats.entries_scanned, 2u)
      << "need a multi-entry query to observe mid-flight expiry";

  // 10us per budget check, deadline 35us out: the query gets a scripted,
  // exact number of checks before time runs out — no sleeping, no flakes.
  ManualClock clock(0.0, /*auto_advance_us=*/10.0);
  SearchOptions options;
  options.budget.clock = &clock;
  options.budget.deadline_us = 35.0;
  NearestNeighborResult result = engine.FindKNearest(target, family, 5,
                                                     options);
  EXPECT_EQ(result.stats.termination, QueryTermination::kDeadline);
  EXPECT_FALSE(result.stats.is_exact);
  EXPECT_LT(result.stats.entries_scanned, full.stats.entries_scanned);
  EXPECT_GE(result.stats.entries_scanned, 1u);
}

TEST(QueryBudgetTest, DegradedAnswerIsDeterministic) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  CosineFamily family;
  const Transaction target = QueryTarget();

  auto run = [&] {
    ManualClock clock(0.0, /*auto_advance_us=*/7.0);
    SearchOptions options;
    options.budget.clock = &clock;
    options.budget.deadline_us = 50.0;
    return engine.FindKNearest(target, family, 5, options);
  };
  NearestNeighborResult first = run();
  NearestNeighborResult second = run();
  ASSERT_EQ(first.neighbors.size(), second.neighbors.size());
  for (size_t i = 0; i < first.neighbors.size(); ++i) {
    EXPECT_EQ(first.neighbors[i].id, second.neighbors[i].id);
    // Bit-identical, not approximately equal: the SIMD kernels guarantee
    // ISA-independent scores, so a scripted clock must reproduce the
    // degraded answer exactly (CI replays this under MBI_FORCE_ISA).
    EXPECT_EQ(first.neighbors[i].similarity, second.neighbors[i].similarity);
  }
  EXPECT_EQ(first.stats.certificate_bound, second.stats.certificate_bound);
  EXPECT_EQ(first.stats.entries_scanned, second.stats.entries_scanned);
}

TEST(QueryBudgetTest, CancellationTokenStopsTheQuery) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner oracle_scanner(&db);
  InverseHammingFamily family;
  const Transaction target = QueryTarget();

  std::atomic<bool> cancel{true};  // cancelled before the query starts
  SearchOptions options;
  options.budget.cancel = &cancel;
  NearestNeighborResult result = engine.FindKNearest(target, family, 4,
                                                     options);
  EXPECT_EQ(result.stats.termination, QueryTermination::kCancelled);
  EXPECT_FALSE(result.stats.is_exact);
  ExpectCertificateDominates(result,
                             oracle_scanner.FindKNearest(target, family, 4),
                             4);
}

TEST(QueryBudgetTest, MaxEntriesCapsTheScan) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  SearchOptions options;
  options.budget.max_entries = 2;
  NearestNeighborResult result = engine.FindKNearest(target, family, 5,
                                                     options);
  EXPECT_EQ(result.stats.entries_scanned, 2u);
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_FALSE(result.stats.is_exact);
}

TEST(QueryBudgetTest, ContextBudgetMergesTightestWins) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  // The context carries the tight entry cap; the options budget is looser.
  QueryContext context;
  QueryBudget session;
  session.max_entries = 1;
  context.set_budget(session);
  SearchOptions options;
  options.budget.max_entries = 1000000;
  NearestNeighborResult result =
      engine.FindKNearest(target, family, 5, options, &context);
  EXPECT_EQ(result.stats.entries_scanned, 1u);
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget);
}

TEST(QueryBudgetTest, CompletedQueryReportsExactAndCompleted) {
  TransactionDatabase db = MakeDatabase(1000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  SearchOptions options;
  options.budget = QueryBudget::WithDeadlineAfterMs(60000.0);  // generous
  NearestNeighborResult result = engine.FindKNearest(target, family, 3,
                                                     options);
  EXPECT_EQ(result.stats.termination, QueryTermination::kCompleted);
  EXPECT_TRUE(result.stats.is_exact);
  EXPECT_TRUE(result.guaranteed_exact);
  // Exactness is certified *by* the bound: everything unevaluated (pruned
  // entries included) provably cannot beat the k-th returned similarity.
  EXPECT_LE(result.stats.certificate_bound, result.neighbors.back().similarity);
}

TEST(QueryBudgetTest, RangeQueryCarriesTheCertificate) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  SearchOptions options;
  options.budget.max_entries = 1;
  RangeQueryResult result =
      engine.FindInRange(target, family, 0.2, options);
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_FALSE(result.stats.is_exact);
  EXPECT_FALSE(result.guaranteed_complete);
  for (const Neighbor& match : result.matches) {
    EXPECT_GE(match.similarity, 0.2);
  }
  // Unbudgeted, the same query completes exactly.
  RangeQueryResult full = engine.FindInRange(target, family, 0.2);
  EXPECT_EQ(full.stats.termination, QueryTermination::kCompleted);
  EXPECT_TRUE(full.stats.is_exact);
  EXPECT_GE(full.matches.size(), result.matches.size());
}

TEST(QueryBudgetTest, SequentialScannerBudgetedScanCertifies) {
  TransactionDatabase db = MakeDatabase(3000);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();
  const size_t k = 5;

  QueryBudget budget;
  budget.max_entries = 1;  // rows; the min-one-chunk rule rounds up
  NearestNeighborResult result;
  scanner.FindKNearest(target, family, k, budget, &result);
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_FALSE(result.stats.is_exact);
  // Row-unit contract (DESIGN.md §13): entries_* count rows on the scan
  // path, so scanned == evaluated, and total is the database size.
  EXPECT_EQ(result.stats.entries_scanned, SequentialScanner::kScanChunk);
  EXPECT_EQ(result.stats.transactions_evaluated, SequentialScanner::kScanChunk);
  EXPECT_EQ(result.stats.entries_scanned, result.stats.transactions_evaluated);
  EXPECT_EQ(result.stats.entries_total, db.size());
  // f(|target|, 0) is a pointwise optimistic bound for every admissible
  // similarity, so it must dominate every score in the database.
  auto f = family.ForTarget(target);
  EXPECT_EQ(result.stats.certificate_bound,
            f->Evaluate(static_cast<int>(target.size()), 0));
  ExpectCertificateDominates(result, scanner.FindKNearest(target, family, k),
                             k);

  // Unlimited budget through the same entry point: exact, full coverage.
  NearestNeighborResult full;
  scanner.FindKNearest(target, family, k, QueryBudget{}, &full);
  EXPECT_TRUE(full.stats.is_exact);
  EXPECT_EQ(full.stats.termination, QueryTermination::kCompleted);
  std::vector<Neighbor> oracle = scanner.FindKNearest(target, family, k);
  ASSERT_EQ(full.neighbors.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(full.neighbors[i].id, oracle[i].id);
    EXPECT_EQ(full.neighbors[i].similarity, oracle[i].similarity);
  }
}

TEST(QueryBudgetTest, InvertedIndexRerankHonorsTheBudget) {
  TransactionDatabase db = MakeDatabase(3000);
  InvertedIndex index(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  QueryBudget budget;
  budget.max_entries = 1;
  InvertedIndex::Result limited = index.FindKNearest(target, family, 5,
                                                     budget);
  if (limited.stats.termination == QueryTermination::kEntryBudget) {
    EXPECT_FALSE(limited.stats.is_exact);
    // Row units: one full re-rank slice was scored before the budget hit.
    EXPECT_EQ(limited.stats.entries_scanned, InvertedIndex::kScanChunk);
    auto f = family.ForTarget(target);
    EXPECT_EQ(limited.stats.certificate_bound,
              f->Evaluate(static_cast<int>(target.size()), 0));
  } else {
    // Fewer candidates than one chunk: the budget never came into play.
    EXPECT_EQ(limited.stats.termination, QueryTermination::kCompleted);
  }
  InvertedIndex::Result full = index.FindKNearest(target, family, 5);
  EXPECT_TRUE(full.stats.is_exact);
}

TEST(QueryBudgetTest, QuarantineFallbackPropagatesTerminationStats) {
  // Regression: the fallback path used to rebuild QueryStats by hand and
  // silently dropped the termination / certificate fields the scanner had
  // filled in. An engine with no index at all serves every query through
  // the fallback, which makes the drop observable.
  TransactionDatabase db = MakeDatabase(3000);
  SignatureTableEngine engine(&db);
  ASSERT_FALSE(engine.healthy());
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  ManualClock clock(500.0);
  SearchOptions options;
  options.budget.clock = &clock;
  options.budget.deadline_us = 0.0;  // pre-expired
  NearestNeighborResult result = engine.FindKNearest(target, family, 5,
                                                     options);
  EXPECT_EQ(result.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(result.stats.termination, QueryTermination::kDeadline);
  EXPECT_FALSE(result.stats.is_exact);
  EXPECT_FALSE(result.neighbors.empty());
  EXPECT_GT(result.stats.certificate_bound, -kInf);
  EXPECT_EQ(engine.fallback_queries(), 1u);

  // Same drop risk on the range fallback.
  RangeQueryResult range = engine.FindInRange(target, family, 0.1, options);
  EXPECT_EQ(range.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(range.stats.termination, QueryTermination::kDeadline);
  EXPECT_FALSE(range.stats.is_exact);
}

TEST(QueryBudgetTest, BudgetedSteadyStateAllocatesNothing) {
  TransactionDatabase db = MakeDatabase(2000);
  SignatureTable table = BuildOver(db);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  ManualClock clock(0.0, /*auto_advance_us=*/1.0);
  SearchOptions options;
  options.budget.clock = &clock;
  options.budget.deadline_us = 1e9;
  options.budget.max_entries = 4;

  QueryContext context;
  NearestNeighborResult result;
  // Warm-up grows every scratch buffer to its high-water mark.
  engine.FindKNearest(target, family, 5, options, &context, &result);
  {
    ScopedAllocationBan ban("budget-limited FindKNearest steady state");
    for (int i = 0; i < 10; ++i) {
      engine.FindKNearest(target, family, 5, options, &context, &result);
    }
  }
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_FALSE(result.stats.is_exact);
}

TEST(QueryBudgetTest, EngineCountsDegradedAndExpiredQueries) {
  TransactionDatabase db = MakeDatabase(1000);
  SignatureTableEngine engine(&db);
  engine.AdoptTable(BuildOver(db));
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  ManualClock clock(500.0);
  SearchOptions options;
  options.budget.clock = &clock;
  options.budget.deadline_us = 0.0;
  (void)engine.FindKNearest(target, family, 3, options);
  (void)engine.FindKNearest(target, family, 3);  // healthy, unlimited

  const Counter* degraded = registry.FindCounter("mbi.engine.query.degraded");
  const Counter* expired =
      registry.FindCounter("mbi.engine.query.deadline_expired");
  ASSERT_NE(degraded, nullptr);
  ASSERT_NE(expired, nullptr);
  EXPECT_EQ(degraded->value(), 1u);
  EXPECT_EQ(expired->value(), 1u);
}

}  // namespace
}  // namespace mbi
