#include "baseline/compressed_postings.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/inverted_index.h"
#include "gen/quest_generator.h"
#include "util/rng.h"

namespace mbi {
namespace {

TEST(CompressedPostingsTest, EncodeDecodeRoundTrip) {
  std::vector<TransactionId> tids = {0, 1, 5, 127, 128, 300, 70'000, 1'000'000};
  CompressedPostingList list = CompressedPostingList::Encode(tids);
  EXPECT_EQ(list.size(), tids.size());
  EXPECT_EQ(list.Decode(), tids);
}

TEST(CompressedPostingsTest, EmptyList) {
  CompressedPostingList list = CompressedPostingList::Encode({});
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.ByteSize(), 0u);
  EXPECT_TRUE(list.Decode().empty());
  EXPECT_FALSE(list.begin().valid());
}

TEST(CompressedPostingsTest, DenseListsCompressWell) {
  // Consecutive ids: 1 byte per gap after the first.
  std::vector<TransactionId> tids(10'000);
  for (TransactionId i = 0; i < tids.size(); ++i) tids[i] = i;
  CompressedPostingList list = CompressedPostingList::Encode(tids);
  EXPECT_LE(list.ByteSize(), tids.size() + 4);
  EXPECT_LT(list.ByteSize() * 3, tids.size() * sizeof(TransactionId));
}

TEST(CompressedPostingsTest, RandomRoundTripFuzz) {
  Rng rng(501);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<TransactionId> chosen;
    size_t count = 1 + rng.UniformUint64(500);
    for (size_t i = 0; i < count; ++i) {
      chosen.insert(static_cast<TransactionId>(rng.UniformUint64(5'000'000)));
    }
    std::vector<TransactionId> tids(chosen.begin(), chosen.end());
    CompressedPostingList list = CompressedPostingList::Encode(tids);
    ASSERT_EQ(list.Decode(), tids) << "trial " << trial;
  }
}

TEST(CompressedPostingsTest, IteratorStreamsValues) {
  std::vector<TransactionId> tids = {2, 9, 10, 999};
  CompressedPostingList list = CompressedPostingList::Encode(tids);
  std::vector<TransactionId> streamed;
  for (auto it = list.begin(); it.valid(); it.Next()) {
    streamed.push_back(it.value());
  }
  EXPECT_EQ(streamed, tids);
}

TEST(CompressedPostingsTest, AppendRejectsNonIncreasing) {
  CompressedPostingList list = CompressedPostingList::Encode({5});
  EXPECT_DEATH(list.Append(5), "ascending");
  EXPECT_DEATH(list.Append(3), "ascending");
}

TEST(CompressedPostingsTest, UnionMatchesSetUnion) {
  Rng rng(503);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<TransactionId>> raw(3);
    std::set<TransactionId> expected;
    for (auto& list : raw) {
      std::set<TransactionId> chosen;
      for (int i = 0; i < 100; ++i) {
        TransactionId tid =
            static_cast<TransactionId>(rng.UniformUint64(2'000));
        chosen.insert(tid);
        expected.insert(tid);
      }
      list.assign(chosen.begin(), chosen.end());
    }
    std::vector<CompressedPostingList> lists;
    std::vector<const CompressedPostingList*> pointers;
    for (const auto& tids : raw) {
      lists.push_back(CompressedPostingList::Encode(tids));
    }
    for (const auto& list : lists) pointers.push_back(&list);
    EXPECT_EQ(UnionPostings(pointers),
              std::vector<TransactionId>(expected.begin(), expected.end()));
  }
}

TEST(CompressedPostingsTest, IntersectMatchesSetIntersection) {
  std::vector<TransactionId> a = {1, 3, 5, 7, 9, 100, 200};
  std::vector<TransactionId> b = {2, 3, 7, 99, 100, 201};
  auto result = IntersectPostings(CompressedPostingList::Encode(a),
                                  CompressedPostingList::Encode(b));
  EXPECT_EQ(result, (std::vector<TransactionId>{3, 7, 100}));
}

TEST(CompressedInvertedIndexTest, SameAnswersSmallerFootprint) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_transaction_size = 9.0;
  config.seed = 509;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(3000);

  InvertedIndex plain(&db, 4096, 0, /*compress_postings=*/false);
  InvertedIndex compressed(&db, 4096, 0, /*compress_postings=*/true);
  EXPECT_FALSE(plain.compressed());
  EXPECT_TRUE(compressed.compressed());
  EXPECT_LT(compressed.PostingsBytes(), plain.PostingsBytes());

  MatchRatioFamily family;
  for (int q = 0; q < 8; ++q) {
    Transaction target = generator.NextTransaction();
    EXPECT_EQ(plain.Candidates(target), compressed.Candidates(target));
    auto a = plain.FindKNearest(target, family, 5);
    auto b = compressed.FindKNearest(target, family, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
  }
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    ASSERT_EQ(plain.PostingsOf(item), compressed.PostingsOf(item));
  }
}

}  // namespace
}  // namespace mbi
