// Exercises the invariant-verification layer: the CheckInvariants() walks on
// SignaturePartition, SignatureTable, BufferPool, and InvertedIndex, the
// buffer-pool pin balance, and the Lemma 2.1 bound-dominance sweep. Each walk
// aborts on violation, so a passing test proves the built structures satisfy
// every checked invariant; death tests prove the checks actually fire.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/inverted_index.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/table_io.h"
#include "gen/quest_generator.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/macros.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 7001) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 50;
  config.avg_itemset_size = 4.0;
  config.avg_transaction_size = 8.0;
  config.seed = seed;
  return config;
}

SignatureTable BuildTable(const TransactionDatabase& db,
                          uint32_t cardinality = 8,
                          int activation_threshold = 1) {
  IndexBuildConfig build;
  build.clustering.target_cardinality = cardinality;
  build.table.activation_threshold = activation_threshold;
  return BuildIndex(db, build);
}

TEST(PartitionInvariantsTest, HoldAfterClusteringBuild) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(500);
  SignatureTable table = BuildTable(db);
  table.partition().CheckInvariants();
}

TEST(PartitionInvariantsTest, HoldForHandBuiltPartition) {
  SignaturePartition partition(3, {0, 0, 1, 2, 1, 2});
  partition.CheckInvariants();
}

TEST(SignatureTableInvariantsTest, HoldAfterBuild) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(800);
  for (int r : {1, 2}) {
    SignatureTable table = BuildTable(db, 8, r);
    table.CheckInvariants(&db);
  }
}

TEST(SignatureTableInvariantsTest, HoldAfterDynamicInserts) {
  QuestGenerator generator(GeneratorConfig(7002));
  TransactionDatabase db = generator.GenerateDatabase(300);
  SignatureTable table = BuildTable(db);
  for (int i = 0; i < 150; ++i) {
    Transaction fresh = generator.NextTransaction();
    TransactionId id = db.Add(fresh);
    table.InsertTransaction(id, fresh);
  }
  table.CheckInvariants(&db);
}

TEST(SignatureTableInvariantsTest, HoldAfterSaveLoadRoundtrip) {
  QuestGenerator generator(GeneratorConfig(7003));
  TransactionDatabase db = generator.GenerateDatabase(400);
  SignatureTable table = BuildTable(db);
  const std::string path = ::testing::TempDir() + "invariants_roundtrip.mbst";
  ASSERT_TRUE(SaveSignatureTable(table, path).ok());
  auto loaded = LoadSignatureTable(path, db);
  ASSERT_TRUE(loaded.ok());
  loaded->CheckInvariants(&db);
  std::remove(path.c_str());
}

TEST(BufferPoolInvariantsTest, LruBookkeepingSurvivesChurn) {
  PageStore store(64);
  for (TransactionId id = 0; id < 64; ++id) {
    store.Append(id, 24);  // ~2 transactions per 64-byte page.
  }
  ASSERT_GT(store.size(), 8u);

  BufferPool pool(&store, 4);
  IoStats io;
  for (int round = 0; round < 3; ++round) {
    for (PageId page = 0; page < store.size(); ++page) {
      pool.Read(page, &io);
      pool.CheckInvariants();
    }
  }
  EXPECT_LE(pool.cached_pages(), 4u);
  EXPECT_EQ(pool.total_pins(), 0u);
}

TEST(BufferPoolInvariantsTest, PinnedPagesAreNotEvicted) {
  PageStore store(64);
  for (TransactionId id = 0; id < 32; ++id) store.Append(id, 24);
  BufferPool pool(&store, 2);
  IoStats io;

  pool.Read(0, &io);
  pool.Pin(0);
  pool.CheckInvariants();

  // Churn far past capacity: page 0 must stay resident while pinned.
  for (PageId page = 1; page < store.size(); ++page) {
    pool.Read(page, &io);
    pool.CheckInvariants();
  }
  uint64_t hits_before = pool.hits();
  pool.Read(0, &io);
  EXPECT_EQ(pool.hits(), hits_before + 1) << "pinned page was evicted";

  pool.Unpin(0);
  EXPECT_EQ(pool.total_pins(), 0u);
  pool.CheckInvariants();
  pool.Clear();
  pool.CheckInvariants();
}

TEST(BufferPoolInvariantsTest, NestedPinsBalance) {
  PageStore store(64);
  for (TransactionId id = 0; id < 8; ++id) store.Append(id, 24);
  BufferPool pool(&store, 2);
  IoStats io;
  pool.Read(0, &io);
  {
    PinGuard outer(&pool, 0);
    PinGuard inner(&pool, 0);
    EXPECT_EQ(pool.total_pins(), 2u);
    pool.CheckInvariants();
  }
  EXPECT_EQ(pool.total_pins(), 0u);
  pool.CheckInvariants();
}

TEST(BufferPoolInvariantsTest, FetchTransactionLeavesPinsBalanced) {
  QuestGenerator generator(GeneratorConfig(7004));
  TransactionDatabase db = generator.GenerateDatabase(200);
  TransactionStore store = TransactionStore::BuildSequential(db, 256);
  BufferPool pool(&store.page_store(), 8);
  IoStats io;
  for (TransactionId id = 0; id < db.size(); ++id) {
    store.FetchTransaction(id, &pool, &io);
  }
  EXPECT_EQ(pool.total_pins(), 0u);
  pool.CheckInvariants();
}

TEST(InvertedIndexInvariantsTest, HoldForPlainAndCompressedPostings) {
  QuestGenerator generator(GeneratorConfig(7005));
  TransactionDatabase db = generator.GenerateDatabase(600);
  for (bool compressed : {false, true}) {
    InvertedIndex index(&db, 4096, /*buffer_pool_pages=*/4, compressed);
    index.CheckInvariants();
  }
}

TEST(BoundDominanceTest, HoldsForAllFamiliesAndThresholds) {
  QuestGenerator generator(GeneratorConfig(7006));
  TransactionDatabase db = generator.GenerateDatabase(600);
  auto targets = generator.GenerateQueries(5);
  for (int r : {1, 2}) {
    SignatureTable table = BuildTable(db, 8, r);
    BranchAndBoundEngine engine(&db, &table);
    for (const char* name : {"hamming", "match_ratio", "cosine", "jaccard"}) {
      auto family = MakeSimilarityFamily(name);
      for (const Transaction& target : targets) {
        engine.CheckBoundDominance(target, *family);
      }
    }
  }
}

TEST(CheckMacrosTest, ComparisonChecksPassOnSatisfiedConditions) {
  MBI_CHECK_EQ(2 + 2, 4);
  MBI_CHECK_NE(1, 2);
  MBI_CHECK_LT(1, 2);
  MBI_CHECK_LE(2, 2);
  MBI_CHECK_GT(3, 2);
  MBI_CHECK_GE(3, 3);
  MBI_DCHECK_EQ(5, 5);
  MBI_DCHECK(true);
}

using InvariantsDeathTest = ::testing::Test;

TEST(InvariantsDeathTest, CheckEqPrintsBothOperands) {
  EXPECT_DEATH(MBI_CHECK_EQ(2 + 2, 5), "2 \\+ 2 == 5 \\(4 vs. 5\\)");
}

TEST(InvariantsDeathTest, UnbalancedUnpinAborts) {
  PageStore store(64);
  store.Append(0, 24);
  BufferPool pool(&store, 2);
  EXPECT_DEATH(pool.Unpin(0), "no outstanding pin");
}

TEST(InvariantsDeathTest, PinOfNonResidentPageAborts) {
  PageStore store(64);
  store.Append(0, 24);
  BufferPool pool(&store, 2);
  EXPECT_DEATH(pool.Pin(0), "not resident");
}

}  // namespace
}  // namespace mbi
