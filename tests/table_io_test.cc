#include "core/table_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct Fixture {
  TransactionDatabase db;
  SignatureTable table;
  QuestGenerator generator;
};

Fixture MakeFixture(uint64_t seed = 401, uint64_t size = 1500) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 70;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(size);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 11;
  build.table.activation_threshold = 2;
  SignatureTable table = BuildIndex(db, build);
  return {std::move(db), std::move(table), std::move(generator)};
}

TEST(TableIoTest, RoundTripPreservesStructure) {
  Fixture fixture = MakeFixture();
  std::string path = TempPath("table_roundtrip.mbst");
  ASSERT_TRUE(SaveSignatureTable(fixture.table, path).ok());
  auto loaded = LoadSignatureTable(path, fixture.db);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->cardinality(), fixture.table.cardinality());
  EXPECT_EQ(loaded->activation_threshold(),
            fixture.table.activation_threshold());
  EXPECT_EQ(loaded->page_size_bytes(), fixture.table.page_size_bytes());
  ASSERT_EQ(loaded->entries().size(), fixture.table.entries().size());
  for (size_t e = 0; e < loaded->entries().size(); ++e) {
    EXPECT_EQ(loaded->entries()[e].coordinate,
              fixture.table.entries()[e].coordinate);
    EXPECT_EQ(loaded->entries()[e].transaction_count,
              fixture.table.entries()[e].transaction_count);
    IoStats io_a, io_b;
    EXPECT_EQ(loaded->FetchEntryTransactions(e, &io_a),
              fixture.table.FetchEntryTransactions(e, &io_b));
    EXPECT_EQ(io_a.pages_read, io_b.pages_read);
  }
  for (TransactionId id = 0; id < fixture.db.size(); ++id) {
    EXPECT_EQ(loaded->CoordinateOfTransaction(id),
              fixture.table.CoordinateOfTransaction(id));
  }
  for (ItemId item = 0; item < fixture.db.universe_size(); ++item) {
    EXPECT_EQ(loaded->partition().SignatureOf(item),
              fixture.table.partition().SignatureOf(item));
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, LoadedTableAnswersQueriesIdentically) {
  Fixture fixture = MakeFixture(409);
  std::string path = TempPath("table_queries.mbst");
  ASSERT_TRUE(SaveSignatureTable(fixture.table, path).ok());
  auto loaded = LoadSignatureTable(path, fixture.db);
  ASSERT_TRUE(loaded.ok());

  BranchAndBoundEngine original(&fixture.db, &fixture.table);
  BranchAndBoundEngine reopened(&fixture.db, &*loaded);
  MatchRatioFamily family;
  for (int q = 0; q < 10; ++q) {
    Transaction target = fixture.generator.NextTransaction();
    auto a = original.FindKNearest(target, family, 5);
    auto b = reopened.FindKNearest(target, family, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
    EXPECT_EQ(a.stats.transactions_evaluated, b.stats.transactions_evaluated);
    EXPECT_EQ(a.stats.io.pages_read, b.stats.io.pages_read);
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, RoundTripSurvivesDynamicInserts) {
  Fixture fixture = MakeFixture(419, 400);
  for (int i = 0; i < 200; ++i) {
    Transaction fresh = fixture.generator.NextTransaction();
    fixture.table.InsertTransaction(fixture.db.Add(fresh), fresh);
  }
  std::string path = TempPath("table_inserts.mbst");
  ASSERT_TRUE(SaveSignatureTable(fixture.table, path).ok());
  auto loaded = LoadSignatureTable(path, fixture.db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_indexed_transactions(), 600u);

  // And the loaded table accepts further inserts.
  Transaction fresh = fixture.generator.NextTransaction();
  loaded->InsertTransaction(fixture.db.Add(fresh), fresh);
  EXPECT_EQ(loaded->num_indexed_transactions(), 601u);
  std::remove(path.c_str());
}

TEST(TableIoTest, RejectsDatabaseMismatch) {
  Fixture fixture = MakeFixture(421);
  std::string path = TempPath("table_mismatch.mbst");
  ASSERT_TRUE(SaveSignatureTable(fixture.table, path).ok());

  // Wrong transaction count.
  TransactionDatabase smaller(fixture.db.universe_size());
  for (TransactionId id = 0; id + 1 < fixture.db.size(); ++id) {
    smaller.Add(fixture.db.Get(id));
  }
  auto mismatch = LoadSignatureTable(path, smaller);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  // Wrong universe.
  TransactionDatabase other_universe(fixture.db.universe_size() + 1);
  auto wrong_universe = LoadSignatureTable(path, other_universe);
  ASSERT_FALSE(wrong_universe.ok());
  EXPECT_EQ(wrong_universe.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIoTest, RejectsCorruptAndTruncatedFiles) {
  Fixture fixture = MakeFixture(431, 300);
  std::string path = TempPath("table_corrupt.mbst");
  ASSERT_TRUE(SaveSignatureTable(fixture.table, path).ok());

  // Truncate the tail.
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fclose(file);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto truncated = LoadSignatureTable(path, fixture.db);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);

  // Garbage magic.
  file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("this is not an index", file);
  std::fclose(file);
  auto garbage = LoadSignatureTable(path, fixture.db);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kCorruption);

  // Missing file.
  auto missing = LoadSignatureTable(TempPath("no_such.mbst"), fixture.db);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbi
