// TSan-oriented interleaving tests for the dynamized index: concurrent
// inserts, deletes, queries, background merges, and a foreground compaction
// all race against one DynamicIndex. Like stress_concurrency_test.cc the
// assertions stay simple (no lost rows, invariants hold, every answer
// internally consistent) — the point is to give the thread sanitizer
// interleavings to object to, with a final differential check proving
// nothing was silently corrupted. CI runs this under -DMBI_SANITIZE=thread
// across an MBI_FAULT_SEED matrix that varies the workload shape.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "baseline/sequential_scan.h"
#include "dyn/dynamic_index.h"
#include "gen/quest_generator.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("MBI_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

TEST(DynConcurrencyTest, InsertsQueriesAndMergesInterleave) {
  const uint64_t seed = FaultSeed();
  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 30;
  config.seed = 4000 + seed;

  ThreadPool merge_pool(2);
  DynamicIndexOptions options;
  options.buffer_capacity = 8;
  options.level_fanout = 2 + static_cast<size_t>(seed % 2);
  options.build.clustering.target_cardinality = 6;
  options.pool = &merge_pool;
  DynamicIndex index(150, options);

  constexpr size_t kRows = 160;
  QuestGenerator generator(config);
  std::vector<Transaction> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) rows.push_back(generator.NextTransaction());

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> inserted{0};
  std::thread writer([&] {
    for (const Transaction& txn : rows) {
      for (;;) {  // Backpressure is a retry signal, never data loss.
        StatusOr<TransactionId> gid = index.Insert(txn);
        if (gid.ok()) break;
        ASSERT_EQ(gid.status().code(), StatusCode::kUnavailable);
        std::this_thread::yield();
      }
      inserted.fetch_add(1);
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  const MatchRatioFamily family;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      QuestGeneratorConfig qconfig;
      qconfig.universe_size = 150;
      qconfig.seed = 5000 + seed * 10 + static_cast<uint64_t>(r);
      QuestGenerator queries(qconfig);
      DynQueryContext context;
      NearestNeighborResult result;
      while (!writer_done.load()) {
        const Transaction target = queries.NextTransaction();
        const size_t visible = inserted.load();
        index.FindKNearest(target, family, 5, SearchOptions{}, &context,
                           &result);
        // A snapshot can only see rows that were fully inserted; it must
        // see at least the rows published before the query started minus
        // nothing (components never drop live rows).
        EXPECT_GE(result.stats.database_size, std::min<size_t>(visible, 1));
        for (size_t i = 1; i < result.neighbors.size(); ++i) {
          EXPECT_GE(result.neighbors[i - 1].similarity,
                    result.neighbors[i].similarity);
        }
        EXPECT_TRUE(result.guaranteed_exact);
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  index.WaitForMaintenance();
  EXPECT_EQ(index.live_size(), kRows);
  EXPECT_TRUE(index.CheckInvariants().ok());

  // Differential epilogue: after the dust settles the index must agree with
  // a scan over everything inserted.
  TransactionDatabase oracle(150);
  for (const Transaction& txn : rows) oracle.Add(txn);
  const SequentialScanner scanner(&oracle);
  QuestGeneratorConfig qconfig;
  qconfig.universe_size = 150;
  qconfig.seed = 6000 + seed;
  QuestGenerator queries(qconfig);
  for (int q = 0; q < 3; ++q) {
    const Transaction target = queries.NextTransaction();
    NearestNeighborResult result = index.FindKNearest(target, family, 8);
    const std::vector<Neighbor> expected =
        scanner.FindKNearest(target, family, 8);
    ASSERT_EQ(result.neighbors.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.neighbors[i].similarity, expected[i].similarity);
    }
  }
}

TEST(DynConcurrencyTest, DeletesAndCompactionRaceQueries) {
  const uint64_t seed = FaultSeed();
  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 30;
  config.seed = 4100 + seed;
  QuestGenerator generator(config);

  ThreadPool merge_pool(2);
  DynamicIndexOptions options;
  options.buffer_capacity = 8;
  options.level_fanout = 2;
  options.build.clustering.target_cardinality = 6;
  options.pool = &merge_pool;
  DynamicIndex index(150, options);

  constexpr size_t kRows = 96;
  std::vector<TransactionId> gids;
  for (size_t i = 0; i < kRows; ++i) {
    for (;;) {
      StatusOr<TransactionId> gid = index.Insert(generator.NextTransaction());
      if (gid.ok()) {
        gids.push_back(gid.value());
        break;
      }
      std::this_thread::yield();
    }
  }
  index.WaitForMaintenance();

  std::atomic<bool> done{false};
  std::thread deleter([&] {
    for (size_t i = 0; i < gids.size(); i += 3) {
      EXPECT_TRUE(index.Delete(gids[i]).ok());
      std::this_thread::yield();
    }
    done.store(true);
  });
  std::thread compactor([&] {
    EXPECT_TRUE(index.Compact().ok());
  });
  std::thread reader([&] {
    const MatchRatioFamily family;
    QuestGeneratorConfig qconfig;
    qconfig.universe_size = 150;
    qconfig.seed = 5100 + seed;
    QuestGenerator queries(qconfig);
    DynQueryContext context;
    NearestNeighborResult result;
    while (!done.load()) {
      index.FindKNearest(queries.NextTransaction(), family, 4,
                         SearchOptions{}, &context, &result);
      EXPECT_TRUE(result.guaranteed_exact);
    }
  });
  deleter.join();
  compactor.join();
  reader.join();
  index.WaitForMaintenance();

  EXPECT_TRUE(index.CheckInvariants().ok());
  EXPECT_EQ(index.live_size(), kRows - (gids.size() + 2) / 3);

  // Every deleted gid is gone, every surviving gid findable.
  const MatchRatioFamily family;
  NearestNeighborResult all = index.FindKNearest(
      generator.NextTransaction(), family, index.live_size());
  std::set<TransactionId> returned;
  for (const Neighbor& neighbor : all.neighbors) returned.insert(neighbor.id);
  for (size_t i = 0; i < gids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(returned.count(gids[i]), 0u) << "deleted gid came back";
    }
  }
}

}  // namespace
}  // namespace mbi
