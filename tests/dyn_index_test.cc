// Unit tests for the Bentley–Saxe dynamization (src/dyn/): buffer and spill
// mechanics, leveling/merge policy, tombstone purging, admission control,
// compaction, persistence (including per-component quarantine), and the
// KnnMerger invariants. Cross-checking against the sequential-scan oracle
// lives in dyn_differential_test.cc; TSan interleavings in
// dyn_concurrency_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dyn/dyn_io.h"
#include "dyn/dynamic_index.h"
#include "dyn/knn_merger.h"
#include "dyn/mutable_buffer.h"
#include "dyn/scheduler.h"
#include "gen/quest_generator.h"
#include "storage/env.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 711) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed;
  return config;
}

DynamicIndexOptions SmallOptions() {
  DynamicIndexOptions options;
  options.buffer_capacity = 8;
  options.level_fanout = 2;
  options.build.clustering.target_cardinality = 6;
  return options;
}

/// Inserts `n` generated rows, asserting each insert is admitted (the
/// inline scheduler never leaves a merge in flight, so backpressure cannot
/// trip here).
std::vector<TransactionId> FillIndex(DynamicIndex* index,
                                     QuestGenerator* generator, size_t n) {
  std::vector<TransactionId> gids;
  gids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto gid = index->Insert(generator->NextTransaction());
    EXPECT_TRUE(gid.ok()) << gid.status().ToString();
    gids.push_back(gid.value());
  }
  return gids;
}

TEST(MutableBufferTest, AppendsUntilFullAndPublishesInOrder) {
  MutableBuffer buffer(3);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.Append(10, Transaction({1, 2})));
  EXPECT_TRUE(buffer.Append(11, Transaction({3})));
  EXPECT_FALSE(buffer.full());
  EXPECT_TRUE(buffer.Append(12, Transaction({})));
  EXPECT_TRUE(buffer.full());
  EXPECT_FALSE(buffer.Append(13, Transaction({4})));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.row(0).gid, 10u);
  EXPECT_EQ(buffer.row(2).gid, 12u);
  EXPECT_EQ(buffer.row(0).txn.size(), 2u);
}

TEST(SchedulerTest, InlineModeRunsJobsSynchronously) {
  Scheduler scheduler(nullptr);
  int ran = 0;
  EXPECT_TRUE(scheduler.Submit([&ran](const QueryBudget& budget) {
    EXPECT_FALSE(budget.cancelled());
    ++ran;
  }));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(scheduler.in_flight(), 0u);
}

TEST(SchedulerTest, StopDropsFutureJobsAndCancelsBudgets) {
  ThreadPool pool(2);
  Scheduler scheduler(&pool);
  scheduler.RequestStop();
  int ran = 0;
  EXPECT_FALSE(scheduler.Submit([&ran](const QueryBudget&) { ++ran; }));
  scheduler.Drain();
  EXPECT_EQ(ran, 0);
}

TEST(SchedulerTest, JobDeadlineReachesTheBudget) {
  Scheduler scheduler(nullptr, /*job_deadline_ms=*/1e6);
  bool saw_deadline = false;
  scheduler.Submit([&saw_deadline](const QueryBudget& budget) {
    saw_deadline = budget.deadline_us !=
                   std::numeric_limits<double>::infinity();
  });
  EXPECT_TRUE(saw_deadline);
}

TEST(DynamicIndexTest, SpillsAtCapacityAndMergesGeometrically) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  FillIndex(&index, &generator, 64);

  // 64 rows / capacity 8 = 8 spills; fanout 2 cascades them into one run.
  EXPECT_EQ(index.live_size(), 64u);
  EXPECT_EQ(index.buffered_rows(), 0u);
  size_t total_rows = 0;
  for (const auto& level : index.LevelBreakdown()) {
    EXPECT_LT(level.components, SmallOptions().level_fanout)
        << "level " << level.level << " left overflowing";
    total_rows += level.rows;
  }
  EXPECT_EQ(total_rows, 64u);
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(DynamicIndexTest, QueriesSpanBufferAndComponents) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  FillIndex(&index, &generator, 21);  // 2 spills + 5 buffered rows.
  EXPECT_EQ(index.buffered_rows(), 5u);

  MatchRatioFamily family;
  const Transaction target = generator.NextTransaction();
  NearestNeighborResult result = index.FindKNearest(target, family, 10);
  EXPECT_EQ(result.neighbors.size(), 10u);
  EXPECT_TRUE(result.guaranteed_exact);
  EXPECT_TRUE(result.stats.is_exact);
  EXPECT_EQ(result.stats.termination, QueryTermination::kCompleted);
  // database_size sums the partitioned components + buffer.
  EXPECT_EQ(result.stats.database_size, 21u);
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_GE(result.neighbors[i - 1].similarity,
              result.neighbors[i].similarity);
  }
}

TEST(DynamicIndexTest, DeleteHidesRowsEverywhere) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  std::vector<TransactionId> gids = FillIndex(&index, &generator, 20);

  // One victim in a static component, one in the buffer.
  ASSERT_TRUE(index.Delete(gids[3]).ok());
  ASSERT_TRUE(index.Delete(gids[18]).ok());
  EXPECT_EQ(index.live_size(), 18u);
  EXPECT_EQ(index.tombstone_count(), 2u);

  MatchRatioFamily family;
  NearestNeighborResult result =
      index.FindKNearest(generator.NextTransaction(), family, 18);
  EXPECT_EQ(result.neighbors.size(), 18u);
  for (const Neighbor& neighbor : result.neighbors) {
    EXPECT_NE(neighbor.id, gids[3]);
    EXPECT_NE(neighbor.id, gids[18]);
  }
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(DynamicIndexTest, DeleteErrorTaxonomy) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  std::vector<TransactionId> gids = FillIndex(&index, &generator, 4);

  EXPECT_EQ(index.Delete(999).code(), StatusCode::kNotFound);
  ASSERT_TRUE(index.Delete(gids[1]).ok());
  EXPECT_EQ(index.Delete(gids[1]).code(), StatusCode::kNotFound);

  // After a merge purges the row, a re-delete still reports kNotFound.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.Delete(gids[1]).code(), StatusCode::kNotFound);
}

TEST(DynamicIndexTest, MergePurgesTombstonesAndPreservesAnswers) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  std::vector<TransactionId> gids = FillIndex(&index, &generator, 40);
  for (size_t i = 0; i < 40; i += 5) {
    ASSERT_TRUE(index.Delete(gids[i]).ok());
  }
  const Transaction target = generator.NextTransaction();
  MatchRatioFamily family;
  NearestNeighborResult before = index.FindKNearest(target, family, 12);

  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.num_components(), 1u);
  EXPECT_EQ(index.live_size(), 32u);
  EXPECT_TRUE(index.CheckInvariants().ok());

  NearestNeighborResult after = index.FindKNearest(target, family, 12);
  ASSERT_EQ(after.neighbors.size(), before.neighbors.size());
  for (size_t i = 0; i < after.neighbors.size(); ++i) {
    EXPECT_EQ(after.neighbors[i].similarity, before.neighbors[i].similarity);
  }
}

TEST(DynamicIndexTest, BackpressureRejectsWithRetryHintWhenLevelZeroIsFull) {
  // Wedge the merge pool with a blocker so the scheduled merge cannot run;
  // level 0 then fills to max_l0_components and the next spill-needing
  // insert must be refused with the admission hint.
  ThreadPool pool(1);
  Mutex mu;
  CondVar cv;
  bool release = false;
  pool.Submit([&] {
    MutexLock lock(&mu);
    while (!release) cv.Wait(&mu);
  });

  DynamicIndexOptions options = SmallOptions();
  options.pool = &pool;
  options.max_l0_components = 3;
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, options);

  Status rejected = Status::Ok();
  for (int i = 0; i < 200 && rejected.ok(); ++i) {
    StatusOr<TransactionId> gid = index.Insert(generator.NextTransaction());
    if (!gid.ok()) rejected = gid.status();
  }
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("retry_after_ms="), std::string::npos);

  {
    MutexLock lock(&mu);
    release = true;
    cv.NotifyAll();
  }
  index.WaitForMaintenance();
  // With the merge drained, admission resumes.
  EXPECT_TRUE(index.Insert(generator.NextTransaction()).ok());
  EXPECT_TRUE(index.CheckInvariants().ok());
}

TEST(DynamicIndexTest, MetricsTrackTheLifecycle) {
  MetricsRegistry registry;
  DynamicIndexOptions options = SmallOptions();
  options.metrics = &registry;
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, options);
  std::vector<TransactionId> gids = FillIndex(&index, &generator, 20);
  ASSERT_TRUE(index.Delete(gids[0]).ok());
  MatchRatioFamily family;
  index.FindKNearest(generator.NextTransaction(), family, 3);

  EXPECT_EQ(registry.FindCounter("mbi.dyn.inserts")->value(), 20u);
  EXPECT_EQ(registry.FindCounter("mbi.dyn.deletes")->value(), 1u);
  EXPECT_GE(registry.FindCounter("mbi.dyn.spills")->value(), 2u);
  EXPECT_GE(registry.FindCounter("mbi.dyn.merges")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("mbi.dyn.queries")->value(), 1u);
  EXPECT_EQ(registry.FindGauge("mbi.dyn.live_rows")->value(), 19.0);
}

TEST(DynIoTest, SaveLoadRoundTripsStateAndAnswers) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndexOptions options = SmallOptions();
  DynamicIndex index(200, options);
  std::vector<TransactionId> gids = FillIndex(&index, &generator, 29);
  ASSERT_TRUE(index.Delete(gids[7]).ok());
  ASSERT_TRUE(index.Delete(gids[27]).ok());  // A buffered row.

  const std::string prefix = ::testing::TempDir() + "dyn_roundtrip";
  ASSERT_TRUE(DynIo::Save(index, prefix).ok());

  auto loaded_or = DynIo::Load(prefix, options);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  std::unique_ptr<DynamicIndex> loaded = std::move(loaded_or).value();
  EXPECT_EQ(loaded->live_size(), index.live_size());
  EXPECT_EQ(loaded->next_gid(), index.next_gid());
  EXPECT_TRUE(loaded->CheckInvariants().ok());

  MatchRatioFamily family;
  const Transaction target = generator.NextTransaction();
  NearestNeighborResult original = index.FindKNearest(target, family, 10);
  NearestNeighborResult restored = loaded->FindKNearest(target, family, 10);
  ASSERT_EQ(restored.neighbors.size(), original.neighbors.size());
  for (size_t i = 0; i < restored.neighbors.size(); ++i) {
    EXPECT_EQ(restored.neighbors[i].similarity,
              original.neighbors[i].similarity);
    EXPECT_EQ(restored.neighbors[i].id, original.neighbors[i].id);
  }

  // The gid watermark survives: new inserts never collide with old rows.
  StatusOr<TransactionId> fresh = loaded->Insert(generator.NextTransaction());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value(), index.next_gid());
}

TEST(DynIoTest, CorruptTableQuarantinesOneComponentOnly) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndexOptions options = SmallOptions();
  DynamicIndex index(200, options);
  FillIndex(&index, &generator, 48);  // Ends as L2(32) + L1(16): two shards.
  ASSERT_GE(index.num_components(), 2u);

  const std::string prefix = ::testing::TempDir() + "dyn_quarantine";
  ASSERT_TRUE(DynIo::Save(index, prefix).ok());

  // Trash component 0's table shard; its rows stay intact.
  Env* env = Env::Default();
  {
    auto file_or = env->NewWritableFile(DynIo::TablePath(prefix, 0));
    ASSERT_TRUE(file_or.ok());
    const char garbage[] = "not a signature table";
    ASSERT_TRUE(file_or.value()->Append(garbage, sizeof(garbage)).ok());
    ASSERT_TRUE(file_or.value()->Close().ok());
  }

  auto loaded_or = DynIo::Load(prefix, options);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  std::unique_ptr<DynamicIndex> loaded = std::move(loaded_or).value();
  EXPECT_TRUE(loaded->CheckInvariants().ok());

  // Still answers exactly — the damaged component scans sequentially and
  // the fallback is surfaced in the stats.
  MatchRatioFamily family;
  const Transaction target = generator.NextTransaction();
  NearestNeighborResult original = index.FindKNearest(target, family, 8);
  NearestNeighborResult degraded = loaded->FindKNearest(target, family, 8);
  ASSERT_EQ(degraded.neighbors.size(), original.neighbors.size());
  for (size_t i = 0; i < degraded.neighbors.size(); ++i) {
    EXPECT_EQ(degraded.neighbors[i].similarity,
              original.neighbors[i].similarity);
  }
  EXPECT_TRUE(degraded.guaranteed_exact);
  EXPECT_GE(degraded.stats.sequential_fallbacks, 1u);

  // A compaction re-mines everything, clearing the quarantine.
  ASSERT_TRUE(loaded->Compact().ok());
  NearestNeighborResult healed = loaded->FindKNearest(target, family, 8);
  EXPECT_EQ(healed.stats.sequential_fallbacks, 0u);
}

TEST(DynIoTest, CorruptRowsFailTheLoad) {
  QuestGenerator generator(GeneratorConfig());
  DynamicIndex index(200, SmallOptions());
  FillIndex(&index, &generator, 16);
  const std::string prefix = ::testing::TempDir() + "dyn_bad_rows";
  ASSERT_TRUE(DynIo::Save(index, prefix).ok());

  Env* env = Env::Default();
  {
    auto file_or = env->NewWritableFile(DynIo::RowsPath(prefix, 0));
    ASSERT_TRUE(file_or.ok());
    const char garbage[] = "x";
    ASSERT_TRUE(file_or.value()->Append(garbage, sizeof(garbage)).ok());
    ASSERT_TRUE(file_or.value()->Close().ok());
  }
  EXPECT_FALSE(DynIo::Load(prefix, SmallOptions()).ok());
}

TEST(KnnMergerTest, DropsTombstonedRowsFromEveryPath) {
  std::vector<TransactionId> tombstones = {5, 9};
  KnnMerger merger;
  merger.Reset(3, &tombstones);
  NearestNeighborResult component;
  component.neighbors = {{5, 0.9}, {1, 0.8}, {2, 0.7}};
  component.stats.is_exact = true;
  merger.AddComponent(component);
  merger.AddCandidate(9, 1.0);  // Tombstoned buffer row.
  merger.AddCandidate(4, 0.85);
  NearestNeighborResult merged;
  merger.Finish(&merged);
  ASSERT_EQ(merged.neighbors.size(), 3u);
  EXPECT_EQ(merged.neighbors[0].id, 4u);
  EXPECT_EQ(merged.neighbors[1].id, 1u);
  EXPECT_EQ(merged.neighbors[2].id, 2u);
}

TEST(KnnMergerTest, CertificateAndExactnessFollowTheMergeRules) {
  KnnMerger merger;
  merger.Reset(2, nullptr);
  NearestNeighborResult exact;
  exact.neighbors = {{1, 0.9}};
  exact.stats.is_exact = true;
  exact.stats.certificate_bound = -std::numeric_limits<double>::infinity();
  merger.AddComponent(exact);
  QueryStats skipped;
  skipped.is_exact = false;
  skipped.certificate_bound = 0.75;
  skipped.termination = QueryTermination::kEntryBudget;
  merger.AddStats(skipped);
  NearestNeighborResult merged;
  merger.Finish(&merged);
  EXPECT_FALSE(merged.guaranteed_exact);
  EXPECT_EQ(merged.stats.certificate_bound, 0.75);
  EXPECT_EQ(merged.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_EQ(merged.unexplored_optimistic_bound, 0.75);
}

}  // namespace
}  // namespace mbi
