#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "core/index_builder.h"
#include "engine/admission.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "util/deadline_clock.h"
#include "util/retry.h"

namespace mbi {
namespace {

/// Closed-loop overload tests for the AdmissionController and the
/// admission-controlled batch path: queue depth stays at its configured
/// bound no matter the offered load, shed/admit counters reconcile and only
/// ever grow, and every answer produced under pressure is either exact or
/// carries the paper-§4 degradation certificate. Designed to run under TSan
/// (the CI overload job) — all cross-thread state is atomics or the
/// controller's own lock.

/// CI sweeps MBI_FAULT_SEED; fold it into the workload so each sweep point
/// exercises a different interleaving and target mix.
uint64_t TestSeed() {
  const char* env = std::getenv("MBI_FAULT_SEED");
  if (env == nullptr) return 1;
  return std::strtoull(env, nullptr, 10) + 1;
}

TEST(AdmissionControllerTest, FastPathAdmitsWithoutQueueing) {
  AdmissionOptions options;
  options.max_in_flight = 2;
  AdmissionController controller(options);
  QueryBudget budget;
  ASSERT_TRUE(controller.Admit(&budget).ok());
  EXPECT_EQ(controller.in_flight(), 1u);
  EXPECT_FALSE(budget.limited()) << "fast-path admission must not touch "
                                    "the budget";
  controller.Release();
  EXPECT_EQ(controller.in_flight(), 0u);
  EXPECT_EQ(controller.admitted(), 1u);
  EXPECT_EQ(controller.shed(), 0u);
}

TEST(AdmissionControllerTest, FullQueueShedsImmediatelyWithRetryHint) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 0;  // no waiting room at all
  options.retry_after_ms = 3.0;
  AdmissionController controller(options);
  QueryBudget budget;
  ASSERT_TRUE(controller.Admit(&budget).ok());

  Status second = controller.Admit(&budget);
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_GT(RetryAfterHintMs(second), 0.0);
  EXPECT_EQ(controller.shed(), 1u);
  controller.Release();
}

TEST(AdmissionControllerTest, PatienceTimeoutShedsQueuedRequest) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 4;
  options.max_queue_wait_ms = 20.0;  // well under the holder's 500ms grip
  AdmissionController controller(options);
  QueryBudget budget;
  ASSERT_TRUE(controller.Admit(&budget).ok());

  Status waited = controller.Admit(&budget);  // times out; token never frees
  EXPECT_EQ(waited.code(), StatusCode::kUnavailable);
  EXPECT_GT(RetryAfterHintMs(waited), 0.0);
  EXPECT_EQ(controller.queue_depth(), 0u) << "a shed waiter must leave the "
                                             "queue";
  controller.Release();
}

TEST(AdmissionControllerTest, QueueingTightensTheBudgetDeadline) {
  ManualClock clock(10000.0);
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 2;
  options.max_queue_wait_ms = 10000.0;  // patience is not under test here
  options.degraded_deadline_ms = 5.0;
  options.clock = &clock;
  AdmissionController controller(options);

  QueryBudget first;
  ASSERT_TRUE(controller.Admit(&first).ok());
  EXPECT_FALSE(first.limited()) << "un-queued admission stays full fidelity";

  QueryBudget queued;
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(controller.Admit(&queued).ok());
    admitted.store(true, std::memory_order_release);
    controller.Release();
  });
  // Park until the waiter is actually queued, then free the token.
  while (controller.queue_depth() == 0) std::this_thread::yield();
  controller.Release();
  waiter.join();

  ASSERT_TRUE(admitted.load(std::memory_order_acquire));
  EXPECT_TRUE(queued.limited());
  EXPECT_LT(queued.deadline_us, std::numeric_limits<double>::infinity());
  EXPECT_EQ(queued.clock, &clock)
      << "the tightened deadline must be measured on the clock it was "
         "derived from";
  EXPECT_EQ(controller.degraded(), 1u);
}

TEST(RetryAfterHintTest, ParsesShedStatusesAndRejectsGarbage) {
  EXPECT_DOUBLE_EQ(
      RetryAfterHintMs(Status::Unavailable("queue full; retry_after_ms=12.5")),
      12.5);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(Status::Unavailable("no hint here")), 0.0);
  EXPECT_DOUBLE_EQ(
      RetryAfterHintMs(Status::Unavailable("retry_after_ms=bogus")), 0.0);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(Status::Unavailable("retry_after_ms=-4")),
                   0.0);
  // A mangled hint must not turn into a surprise multi-minute sleep.
  EXPECT_DOUBLE_EQ(
      RetryAfterHintMs(Status::Unavailable("retry_after_ms=9000000")), 0.0);
}

TEST(OverloadTest, ClosedLoopBoundsQueueDepthAndReconcilesCounters) {
  AdmissionOptions options;
  options.max_in_flight = 2;
  options.max_queue_depth = 3;
  options.max_queue_wait_ms = 1.0;  // shed fast: this is an overload test
  options.retry_after_ms = 0.1;
  AdmissionController controller(options);

  constexpr int kProducers = 8;
  constexpr int kRequestsPerProducer = 60;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> shed_count{0};
  std::atomic<size_t> max_queue_seen{0};
  std::atomic<bool> stop_monitor{false};

  // Monitor thread: the queue bound must hold at every instant, not just at
  // the end.
  std::thread monitor([&] {
    while (!stop_monitor.load(std::memory_order_acquire)) {
      const size_t depth = controller.queue_depth();
      size_t seen = max_queue_seen.load(std::memory_order_relaxed);
      while (depth > seen &&
             !max_queue_seen.compare_exchange_weak(
                 seen, depth, std::memory_order_relaxed)) {
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int r = 0; r < kRequestsPerProducer; ++r) {
        QueryBudget budget;
        Status admitted = controller.Admit(&budget);
        if (admitted.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          // Hold the token briefly so contention actually builds.
          if ((p + r) % 3 == 0) std::this_thread::yield();
          controller.Release();
        } else {
          ASSERT_EQ(admitted.code(), StatusCode::kUnavailable);
          shed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Monotonicity: sampled mid-flight, the shed/admitted counters only grow.
  uint64_t last_shed = 0, last_admitted = 0;
  for (int sample = 0; sample < 200; ++sample) {
    const uint64_t shed_now = controller.shed();
    const uint64_t admitted_now = controller.admitted();
    EXPECT_GE(shed_now, last_shed);
    EXPECT_GE(admitted_now, last_admitted);
    last_shed = shed_now;
    last_admitted = admitted_now;
    std::this_thread::yield();
  }
  for (std::thread& producer : producers) producer.join();
  stop_monitor.store(true, std::memory_order_release);
  monitor.join();

  const uint64_t total =
      static_cast<uint64_t>(kProducers) * kRequestsPerProducer;
  EXPECT_EQ(ok_count.load() + shed_count.load(), total);
  EXPECT_EQ(controller.admitted(), ok_count.load());
  EXPECT_EQ(controller.shed(), shed_count.load());
  EXPECT_LE(max_queue_seen.load(), options.max_queue_depth);
  EXPECT_EQ(controller.in_flight(), 0u);
  EXPECT_EQ(controller.queue_depth(), 0u);
}

TEST(OverloadTest, AdmittedBatchesDegradeInsteadOfQueueingUnboundedly) {
  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 30;
  config.seed = TestSeed();
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(1500);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTableEngine engine(&db);
  engine.AdoptTable(BuildIndex(db, build));
  ASSERT_TRUE(engine.healthy());
  MatchRatioFamily family;
  const size_t k = 5;

  std::vector<Transaction> targets = generator.GenerateQueries(4);
  // Unpressured oracle answers, for certificate dominance below.
  std::vector<NearestNeighborResult> oracle;
  for (const Transaction& target : targets) {
    oracle.push_back(engine.FindKNearest(target, family, k));
  }

  AdmissionOptions admission_options;
  admission_options.max_in_flight = 1;
  admission_options.max_queue_depth = 8;
  admission_options.max_queue_wait_ms = 2000.0;
  // Stage-one shedding so tight that any queued batch must come back
  // degraded-but-certified rather than exact-but-late.
  admission_options.degraded_deadline_ms = 1e-6;
  AdmissionController controller(admission_options);

  // Hold the single token from the main thread before any client starts:
  // the first wave of clients is then *guaranteed* to queue, so stage-one
  // tightening deterministically fires (no scheduling luck involved).
  QueryBudget held;
  ASSERT_TRUE(controller.Admit(&held).ok());

  constexpr int kClients = 6;
  std::atomic<uint64_t> answers{0};
  std::atomic<uint64_t> deadline_cut{0};
  std::atomic<uint64_t> shed_batches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        StatusOr<std::vector<NearestNeighborResult>> results =
            engine.FindKNearestBatchAdmitted(&controller, targets, family, k,
                                             {}, /*num_threads=*/1);
        if (!results.ok()) {
          ASSERT_EQ(results.status().code(), StatusCode::kUnavailable);
          shed_batches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ASSERT_EQ(results.value().size(), targets.size());
        for (size_t i = 0; i < results.value().size(); ++i) {
          const NearestNeighborResult& result = results.value()[i];
          answers.fetch_add(1, std::memory_order_relaxed);
          // Overload never yields a malformed answer: there is always at
          // least one neighbor, and a budget-cut answer carries a
          // certificate that dominates what an unpressured query found
          // (Lemma 2.1).
          ASSERT_FALSE(result.neighbors.empty());
          if (result.stats.termination == QueryTermination::kDeadline) {
            deadline_cut.fetch_add(1, std::memory_order_relaxed);
          }
          if (!result.stats.is_exact) {
            const double reachable =
                std::max(result.neighbors.back().similarity,
                         result.stats.certificate_bound);
            for (const Neighbor& truth : oracle[i].neighbors) {
              // Lemma 2.1 a posteriori: any neighbor the degraded answer
              // does NOT return is bounded by the certificate. Returned
              // ones (e.g. a +inf exact duplicate the first scanned entry
              // happened to hold) are covered by being in the answer.
              const bool returned = std::any_of(
                  result.neighbors.begin(), result.neighbors.end(),
                  [&](const Neighbor& n) { return n.id == truth.id; });
              if (!returned) ASSERT_GE(reachable, truth.similarity);
            }
          }
        }
      }
    });
  }
  // Let the backlog build, then free the token and let the loop drain.
  while (controller.queue_depth() == 0) std::this_thread::yield();
  controller.Release();
  for (std::thread& client : clients) client.join();

  EXPECT_GT(answers.load(), 0u);
  // The closed loop reconciles: every batch was either admitted or shed
  // (+1 for the main thread's token hold).
  EXPECT_EQ(controller.admitted() + controller.shed(),
            static_cast<uint64_t>(kClients) * 6 + 1);
  // Every client that queued behind the held token had its budget
  // tightened, and a pre-expired deadline must cut the search visibly.
  EXPECT_GT(controller.degraded(), 0u);
  EXPECT_GT(deadline_cut.load(), 0u)
      << "tightened budgets should have produced deadline-terminated, "
         "certified answers";
  EXPECT_EQ(controller.in_flight(), 0u);
}

}  // namespace
}  // namespace mbi
