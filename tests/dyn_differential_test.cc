// Differential gate for the dynamized index (ISSUE 9 acceptance): the
// buffer+levels fan-out must be *bit-identical in similarity values and
// cutoff-tie semantics* to a single SequentialScanner over the live union
// (deletes applied), for every similarity family and every kernel ISA.
//
// Tie semantics mirror fuzz/query_differential_fuzz.cc: above the cutoff
// group ids must match the oracle exactly; within the tie group at the k-th
// similarity the ids are unspecified (per-component branch-and-bound may
// prune tied candidates), so each reported id is instead recomputed from
// scratch and required to be genuinely tied, live, distinct, and in
// ascending-gid order. Certificates cannot be compared bitwise against the
// scan (a pruning component legitimately reports a tighter bound), so they
// are checked by dominance: certificate_bound >= every similarity the
// oracle found beyond the returned set, and exact searches must say so.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/similarity.h"
#include "dyn/dynamic_index.h"
#include "gen/quest_generator.h"
#include "kernel/dispatch.h"
#include "txn/database.h"
#include "txn/transaction.h"

namespace mbi {
namespace {

bool SameSimilarity(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

/// The live union in ascending-gid order plus the gid of each oracle row.
struct Oracle {
  TransactionDatabase db;
  std::vector<TransactionId> gids;

  explicit Oracle(uint32_t universe) : db(universe) {}
};

/// A dynamized workload and the material to check it: every row ever
/// inserted (by gid) and the set of deleted gids.
struct Workload {
  std::unique_ptr<DynamicIndex> index;
  std::map<TransactionId, Transaction> rows;
  std::set<TransactionId> deleted;

  Oracle MakeOracle(uint32_t universe) const {
    Oracle oracle(universe);
    for (const auto& [gid, txn] : rows) {
      if (deleted.count(gid) != 0) continue;
      oracle.db.Add(txn);
      oracle.gids.push_back(gid);
    }
    return oracle;
  }
};

Workload BuildWorkload(uint64_t seed, size_t num_rows, size_t buffer_capacity,
                       size_t fanout, double delete_every_nth) {
  QuestGeneratorConfig config;
  config.universe_size = 120;
  config.num_large_itemsets = 30;
  config.seed = seed;
  QuestGenerator generator(config);

  DynamicIndexOptions options;
  options.buffer_capacity = buffer_capacity;
  options.level_fanout = fanout;
  options.build.clustering.target_cardinality = 6;

  Workload workload;
  workload.index = std::make_unique<DynamicIndex>(120, options);
  for (size_t i = 0; i < num_rows; ++i) {
    Transaction txn = generator.NextTransaction();
    auto gid = workload.index->Insert(txn);
    EXPECT_TRUE(gid.ok());
    workload.rows.emplace(gid.value(), std::move(txn));
  }
  if (delete_every_nth > 0) {
    size_t i = 0;
    for (const auto& [gid, txn] : workload.rows) {
      if (i++ % static_cast<size_t>(delete_every_nth) == 0) {
        EXPECT_TRUE(workload.index->Delete(gid).ok());
        workload.deleted.insert(gid);
      }
    }
  }
  return workload;
}

/// The full differential comparison for one (target, family, k).
void ExpectMatchesOracle(const Workload& workload, const Oracle& oracle,
                         const Transaction& target,
                         const SimilarityFamily& family, size_t k) {
  NearestNeighborResult result =
      workload.index->FindKNearest(target, family, k);
  ASSERT_TRUE(result.guaranteed_exact) << "exact fan-out lost its guarantee";
  ASSERT_TRUE(result.stats.is_exact);
  ASSERT_EQ(result.stats.termination, QueryTermination::kCompleted);

  const SequentialScanner scanner(&oracle.db);
  const std::vector<Neighbor> expected =
      scanner.FindKNearest(target, family, k);
  ASSERT_EQ(result.neighbors.size(), expected.size());
  if (expected.empty()) return;

  // Values: bit-identical, position by position.
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(SameSimilarity(result.neighbors[i].similarity,
                               expected[i].similarity))
        << "position " << i << ": " << result.neighbors[i].similarity
        << " vs oracle " << expected[i].similarity;
  }

  // Ids: determined above the cutoff tie group, verified-tied within it.
  const double cutoff = expected.back().similarity;
  const std::unique_ptr<SimilarityFunction> function =
      family.ForTarget(target);
  std::set<TransactionId> seen;
  for (size_t i = 0; i < expected.size(); ++i) {
    const TransactionId gid = result.neighbors[i].id;
    ASSERT_TRUE(seen.insert(gid).second) << "duplicate gid " << gid;
    ASSERT_EQ(workload.deleted.count(gid), 0u)
        << "tombstoned gid " << gid << " leaked into the result";
    const auto row = workload.rows.find(gid);
    ASSERT_NE(row, workload.rows.end()) << "unknown gid " << gid;
    if (!SameSimilarity(expected[i].similarity, cutoff)) {
      ASSERT_EQ(gid, oracle.gids[expected[i].id])
          << "position " << i << " above the cutoff group";
      continue;
    }
    // Tie group: recompute from scratch, bypassing every index structure.
    size_t match = 0, hamming = 0;
    MatchAndHamming(target, row->second, &match, &hamming);
    const double recomputed = function->Evaluate(static_cast<int>(match),
                                                 static_cast<int>(hamming));
    ASSERT_TRUE(SameSimilarity(recomputed, result.neighbors[i].similarity))
        << "gid " << gid << " reported " << result.neighbors[i].similarity
        << ", recomputed " << recomputed;
    if (i > 0 && SameSimilarity(result.neighbors[i].similarity,
                                result.neighbors[i - 1].similarity)) {
      ASSERT_GT(gid, result.neighbors[i - 1].id)
          << "tied gids not in ascending order";
    }
  }
}

void RunDifferential(const Workload& workload, uint64_t query_seed) {
  Oracle oracle = workload.MakeOracle(120);
  QuestGeneratorConfig config;
  config.universe_size = 120;
  config.num_large_itemsets = 30;
  config.seed = query_seed;
  QuestGenerator generator(config);

  const InverseHammingFamily hamming;
  const MatchRatioFamily match_ratio;
  const CosineFamily cosine;
  const JaccardFamily jaccard;
  const SimilarityFamily* families[] = {&hamming, &match_ratio, &cosine,
                                        &jaccard};
  for (int q = 0; q < 6; ++q) {
    const Transaction target = generator.NextTransaction();
    for (const SimilarityFamily* family : families) {
      for (size_t k : {1u, 3u, 10u}) {
        ExpectMatchesOracle(workload, oracle, target, *family, k);
      }
    }
  }
}

TEST(DynDifferentialTest, MultiLevelFanOutMatchesTheOracle) {
  Workload workload = BuildWorkload(/*seed=*/1001, /*num_rows=*/150,
                                    /*buffer_capacity=*/8, /*fanout=*/2,
                                    /*delete_every_nth=*/0);
  RunDifferential(workload, 9001);
}

TEST(DynDifferentialTest, TombstonesAcrossBufferAndLevels) {
  Workload workload = BuildWorkload(/*seed=*/1002, /*num_rows=*/140,
                                    /*buffer_capacity=*/16, /*fanout=*/3,
                                    /*delete_every_nth=*/4);
  ASSERT_GT(workload.index->tombstone_count(), 0u);
  RunDifferential(workload, 9002);
}

TEST(DynDifferentialTest, BufferOnlyAndSingleComponentEdges) {
  // Everything still buffered (no spill yet).
  Workload small = BuildWorkload(/*seed=*/1003, /*num_rows=*/7,
                                 /*buffer_capacity=*/64, /*fanout=*/4,
                                 /*delete_every_nth=*/3);
  RunDifferential(small, 9003);
  // Exactly one component, empty buffer.
  Workload one = BuildWorkload(/*seed=*/1004, /*num_rows=*/32,
                               /*buffer_capacity=*/32, /*fanout=*/8,
                               /*delete_every_nth=*/0);
  RunDifferential(one, 9004);
}

TEST(DynDifferentialTest, CutoffTiesSpanningComponents) {
  // Duplicate rows across distinct components force exact ties at the
  // cutoff that no single component can resolve alone.
  QuestGeneratorConfig config;
  config.universe_size = 120;
  config.num_large_itemsets = 30;
  config.seed = 77;
  QuestGenerator generator(config);

  DynamicIndexOptions options;
  options.buffer_capacity = 4;
  options.level_fanout = 3;
  options.build.clustering.target_cardinality = 6;

  Workload workload;
  workload.index = std::make_unique<DynamicIndex>(120, options);
  std::vector<Transaction> base;
  for (int i = 0; i < 6; ++i) base.push_back(generator.NextTransaction());
  for (int round = 0; round < 8; ++round) {
    for (const Transaction& txn : base) {
      auto gid = workload.index->Insert(txn);
      ASSERT_TRUE(gid.ok());
      workload.rows.emplace(gid.value(), txn);
    }
  }
  ASSERT_GE(workload.index->num_components(), 2u);

  Oracle oracle = workload.MakeOracle(120);
  const MatchRatioFamily family;
  // k = 5 lands inside a duplicate group: every value is multiply tied.
  ExpectMatchesOracle(workload, oracle, base[0], family, 5);
  const InverseHammingFamily hamming;
  ExpectMatchesOracle(workload, oracle, base[2], hamming, 7);
}

TEST(DynDifferentialTest, EveryKernelIsaAgrees) {
  struct IsaGuard {
    ~IsaGuard() { kernel::ResetIsaForTesting(); }
  } guard;
  Workload workload = BuildWorkload(/*seed=*/1005, /*num_rows=*/96,
                                    /*buffer_capacity=*/8, /*fanout=*/2,
                                    /*delete_every_nth=*/5);
  for (const kernel::Isa isa :
       {kernel::Isa::kScalar, kernel::Isa::kAvx2, kernel::Isa::kAvx512,
        kernel::Isa::kNeon}) {
    if (kernel::KernelsFor(isa) == nullptr) continue;
    kernel::ForceIsa(isa);
    RunDifferential(workload, 9005);
  }
}

TEST(DynDifferentialTest, BudgetedFanOutCertifiesWhatItSkipped) {
  Workload workload = BuildWorkload(/*seed=*/1006, /*num_rows=*/150,
                                    /*buffer_capacity=*/8, /*fanout=*/2,
                                    /*delete_every_nth=*/0);
  Oracle oracle = workload.MakeOracle(120);
  QuestGeneratorConfig config;
  config.universe_size = 120;
  config.seed = 9006;
  QuestGenerator generator(config);
  const Transaction target = generator.NextTransaction();
  const MatchRatioFamily family;

  SearchOptions options;
  options.budget.max_entries = 4;  // Starves most of the fan-out.
  NearestNeighborResult degraded =
      workload.index->FindKNearest(target, family, 5, options);
  EXPECT_FALSE(degraded.guaranteed_exact);
  EXPECT_EQ(degraded.stats.termination, QueryTermination::kEntryBudget);
  EXPECT_GT(degraded.stats.entries_unexplored, 0u);

  // Dominance: the certificate must bound every similarity in the database,
  // returned or not — that is what makes the degraded answer trustworthy.
  const SequentialScanner scanner(&oracle.db);
  const std::vector<Neighbor> truth =
      scanner.FindKNearest(target, family, oracle.db.size());
  for (const Neighbor& neighbor : truth) {
    const bool returned =
        std::any_of(degraded.neighbors.begin(), degraded.neighbors.end(),
                    [&](const Neighbor& r) {
                      return oracle.gids[neighbor.id] == r.id;
                    });
    if (!returned) {
      EXPECT_GE(degraded.stats.certificate_bound, neighbor.similarity);
    }
  }
}

}  // namespace
}  // namespace mbi
