#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baseline/inverted_index.h"
#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

/// End-to-end pipeline checks mirroring the paper's experimental setup at
/// test-friendly scale: generate Quest data, build one signature table, and
/// exercise all three similarity functions against the same table.

QuestGeneratorConfig PaperLikeConfig(double avg_transaction_size,
                                     uint64_t seed) {
  QuestGeneratorConfig config;
  config.universe_size = 500;
  config.num_large_itemsets = 200;
  config.avg_itemset_size = 6.0;
  config.avg_transaction_size = avg_transaction_size;
  config.seed = seed;
  return config;
}

TEST(IntegrationTest, OneTableServesAllThreeSimilarityFunctions) {
  QuestGenerator generator(PaperLikeConfig(10.0, 211));
  TransactionDatabase db = generator.GenerateDatabase(3000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 11;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  auto queries = generator.GenerateQueries(8);

  for (const char* name : {"hamming", "match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(name);
    for (const Transaction& target : queries) {
      auto result = engine.FindNearest(target, *family);
      auto oracle = scanner.FindKNearest(target, *family, 1);
      ASSERT_TRUE(result.guaranteed_exact);
      bool both_inf = std::isinf(result.neighbors[0].similarity) &&
                      std::isinf(oracle[0].similarity);
      EXPECT_TRUE(both_inf ||
                  result.neighbors[0].similarity == oracle[0].similarity)
          << name;
    }
  }
}

TEST(IntegrationTest, PruningImprovesWithDatabaseSize) {
  // The paper's headline scalability property (Figures 6/9/12): percentage
  // pruning efficiency increases with the number of transactions.
  QuestGenerator generator(PaperLikeConfig(10.0, 223));
  TransactionDatabase big = generator.GenerateDatabase(8000);

  // Same distribution, smaller prefix.
  TransactionDatabase small(big.universe_size());
  for (TransactionId id = 0; id < 1000; ++id) small.Add(big.Get(id));

  IndexBuildConfig build;
  build.clustering.target_cardinality = 12;
  SignatureTable small_table = BuildIndex(small, build);
  SignatureTable big_table = BuildIndex(big, build);
  BranchAndBoundEngine small_engine(&small, &small_table);
  BranchAndBoundEngine big_engine(&big, &big_table);
  InverseHammingFamily family;

  auto queries = generator.GenerateQueries(10);
  double small_pruning = 0.0, big_pruning = 0.0;
  for (const Transaction& target : queries) {
    small_pruning +=
        small_engine.FindNearest(target, family).stats.PruningEfficiencyPercent();
    big_pruning +=
        big_engine.FindNearest(target, family).stats.PruningEfficiencyPercent();
  }
  EXPECT_GT(big_pruning / 10, small_pruning / 10);
}

TEST(IntegrationTest, HigherCardinalityPrunesMore) {
  // The paper's memory-availability axis: larger K gives finer partitions
  // and better pruning.
  QuestGenerator generator(PaperLikeConfig(10.0, 227));
  TransactionDatabase db = generator.GenerateDatabase(5000);
  InverseHammingFamily family;
  auto queries = generator.GenerateQueries(10);

  double pruning_low = 0.0, pruning_high = 0.0;
  for (auto [k, out] :
       {std::pair<uint32_t, double*>{6, &pruning_low}, {14, &pruning_high}}) {
    IndexBuildConfig build;
    build.clustering.target_cardinality = k;
    SignatureTable table = BuildIndex(db, build);
    BranchAndBoundEngine engine(&db, &table);
    for (const Transaction& target : queries) {
      *out += engine.FindNearest(target, family).stats
                  .PruningEfficiencyPercent();
    }
  }
  EXPECT_GT(pruning_high, pruning_low);
}

TEST(IntegrationTest, EarlyTerminationAccuracyIsHighAtTwoPercent) {
  // The paper's accuracy metric: fraction of queries whose early-terminated
  // answer equals the true nearest neighbour (by similarity value).
  QuestGenerator generator(PaperLikeConfig(10.0, 229));
  TransactionDatabase db = generator.GenerateDatabase(6000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;

  SearchOptions options;
  options.max_access_fraction = 0.02;
  auto queries = generator.GenerateQueries(20);
  int correct = 0;
  for (const Transaction& target : queries) {
    auto fast = engine.FindNearest(target, family, options);
    auto exact = engine.FindNearest(target, family);
    bool both_inf = std::isinf(fast.neighbors[0].similarity) &&
                    std::isinf(exact.neighbors[0].similarity);
    correct += both_inf ||
               fast.neighbors[0].similarity == exact.neighbors[0].similarity;
  }
  EXPECT_GE(correct, 15) << "accuracy at 2% termination collapsed";
}

TEST(IntegrationTest, SignatureTableBeatsInvertedIndexOnAccessVolume) {
  // The paper's §5.1 comparison: the signature table answers from 0.2–2% of
  // the data while the inverted index's candidate phase alone touches a
  // large fraction.
  QuestGenerator generator(PaperLikeConfig(10.0, 233));
  TransactionDatabase db = generator.GenerateDatabase(4000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  InvertedIndex inverted(&db);
  MatchRatioFamily family;

  auto queries = generator.GenerateQueries(10);
  double table_access = 0.0, inverted_access = 0.0;
  for (const Transaction& target : queries) {
    table_access += engine.FindNearest(target, family).stats.AccessedFraction();
    inverted_access +=
        inverted.FindKNearest(target, family, 1).accessed_fraction;
  }
  EXPECT_LT(table_access, inverted_access);
}

TEST(IntegrationTest, CorrelationAwareSignaturesBeatBalancedControlAtHigherR) {
  // Ablation backing §3.1: at activation threshold r = 2 a transaction only
  // activates a signature holding >= 2 of its items. With correlation-blind
  // balanced signatures the items of a basket scatter, almost nothing
  // activates, most transactions collapse onto a few supercoordinates, and
  // pruning degrades; correlation-aware signatures keep the coordinates
  // informative. (At r = 1 the two partitioners are nearly tied — the
  // ablation bench quantifies both regimes.)
  QuestGenerator generator(PaperLikeConfig(10.0, 239));
  TransactionDatabase db = generator.GenerateDatabase(5000);
  InverseHammingFamily family;
  auto queries = generator.GenerateQueries(10);

  double linked = 0.0, balanced = 0.0;
  for (auto [use_balanced, out] :
       {std::pair<bool, double*>{false, &linked}, {true, &balanced}}) {
    IndexBuildConfig build;
    build.clustering.target_cardinality = 12;
    build.table.activation_threshold = 2;
    build.use_balanced_partitioner = use_balanced;
    SignatureTable table = BuildIndex(db, build);
    BranchAndBoundEngine engine(&db, &table);
    for (const Transaction& target : queries) {
      *out += engine.FindNearest(target, family).stats
                  .PruningEfficiencyPercent();
    }
  }
  EXPECT_GT(linked, balanced);
}

}  // namespace
}  // namespace mbi
