// Exhaustive scalar-vs-SIMD kernel equivalence suite.
//
// The dispatch contract (kernel/dispatch.h) is that every ISA variant is
// bit-identical to the scalar reference — dispatch may only change speed,
// never results. This suite proves it at three levels:
//
//   1. raw kernels: match/popcount and bounds batches across all compiled
//      ISAs, all word counts 0..19 (0..3 full vector blocks plus every
//      ragged tail), misaligned base pointers, gather and streaming forms,
//      and random full-range coordinates;
//   2. layout plumbing: ItemBandMap / BlockedLayout construction and the
//      PackedTarget batch entry points against the per-candidate probe and
//      the merge scan, across universe sizes and band splits;
//   3. whole queries: FindKNearest under every forced ISA against the
//      frozen FindKNearestReference, plus the zero-allocation steady state
//      through the batch path.
//
// Every test restores the dispatcher with ResetIsaForTesting so a forced
// ISA can never leak into other tests (MBI_FORCE_ISA sweeps in CI rely on
// the env-resolved default being re-installable).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/bounds.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "gen/quest_generator.h"
#include "kernel/aligned_buffer.h"
#include "kernel/blocked_layout.h"
#include "kernel/dispatch.h"
#include "kernel/kernels.h"
#include "txn/candidate_layout.h"
#include "txn/packed_target.h"
#include "util/alloc_guard.h"

namespace mbi {
namespace {

using kernel::Isa;

constexpr Isa kAllIsas[] = {Isa::kScalar, Isa::kAvx2, Isa::kAvx512,
                           Isa::kNeon};

/// Restores cpuid/env-resolved dispatch on scope exit, so forced ISAs never
/// leak across tests.
struct IsaGuard {
  ~IsaGuard() { kernel::ResetIsaForTesting(); }
};

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (Isa isa : kAllIsas) {
    if (kernel::KernelsFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

TEST(DispatchTest, ParseIsaName) {
  Isa isa = Isa::kNeon;
  EXPECT_TRUE(kernel::ParseIsaName("scalar", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  EXPECT_TRUE(kernel::ParseIsaName("AVX2", &isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  EXPECT_TRUE(kernel::ParseIsaName("avx512", &isa));
  EXPECT_EQ(isa, Isa::kAvx512);
  EXPECT_TRUE(kernel::ParseIsaName("Neon", &isa));
  EXPECT_EQ(isa, Isa::kNeon);
  EXPECT_FALSE(kernel::ParseIsaName("sse9", &isa));
  EXPECT_FALSE(kernel::ParseIsaName("", &isa));
  EXPECT_FALSE(kernel::ParseIsaName(nullptr, &isa));
  for (Isa i : kAllIsas) {
    Isa round_trip;
    ASSERT_TRUE(kernel::ParseIsaName(kernel::IsaName(i), &round_trip));
    EXPECT_EQ(round_trip, i);
  }
}

TEST(DispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(kernel::IsaSupported(Isa::kScalar));
  ASSERT_NE(kernel::KernelsFor(Isa::kScalar), nullptr);
  EXPECT_EQ(kernel::KernelsFor(Isa::kScalar)->isa, Isa::kScalar);
}

TEST(DispatchTest, ForceIsaClampsToSupported) {
  IsaGuard guard;
  for (Isa requested : kAllIsas) {
    const Isa installed = kernel::ForceIsa(requested);
    EXPECT_TRUE(kernel::IsaSupported(installed)) << kernel::IsaName(requested);
    EXPECT_EQ(kernel::ActiveIsa(), installed);
    if (kernel::IsaSupported(requested)) {
      EXPECT_EQ(installed, requested);
    } else {
      // Unsupported requests clamp to the widest supported path.
      EXPECT_EQ(installed, kernel::WidestSupportedIsa());
    }
  }
}

TEST(DispatchTest, EnvOverrideHonoredOnReset) {
  IsaGuard guard;
  ASSERT_EQ(setenv("MBI_FORCE_ISA", "scalar", /*overwrite=*/1), 0);
  kernel::ResetIsaForTesting();
  EXPECT_EQ(kernel::ActiveIsa(), Isa::kScalar);
  ASSERT_EQ(setenv("MBI_FORCE_ISA", "not-an-isa", 1), 0);
  kernel::ResetIsaForTesting();  // Unknown value falls back to cpuid.
  EXPECT_EQ(kernel::ActiveIsa(), kernel::WidestSupportedIsa());
  ASSERT_EQ(unsetenv("MBI_FORCE_ISA"), 0);
  kernel::ResetIsaForTesting();
  EXPECT_EQ(kernel::ActiveIsa(), kernel::WidestSupportedIsa());
}

// ---------------------------------------------------------------------------
// Raw match kernel equivalence.
// ---------------------------------------------------------------------------

TEST(MatchKernelTest, AllIsasMatchScalarAcrossShapes) {
  std::mt19937_64 rng(20260808);
  // 0..19 words spans 0..3 full AVX2 blocks (4 words), 0..2 AVX-512 blocks
  // (8 words), and every ragged tail in between.
  for (size_t words = 0; words <= 19; ++words) {
    for (size_t count : {size_t{0}, size_t{1}, size_t{3}, size_t{8},
                         size_t{17}}) {
      const size_t stride = words + (words % 3);  // Rows wider than read.
      // Over-allocate so misaligned views stay in bounds.
      std::vector<uint64_t> pool(stride * count + words + 8);
      for (uint64_t& w : pool) w = rng();
      std::vector<uint64_t> target(words + 4);
      for (uint64_t& w : target) w = rng();

      std::vector<uint32_t> ids(count);
      std::iota(ids.begin(), ids.end(), 0u);
      std::shuffle(ids.begin(), ids.end(), rng);

      for (size_t offset : {size_t{0}, size_t{1}, size_t{2}, size_t{3}}) {
        const uint64_t* rows = pool.data() + offset;
        const uint64_t* target_row = target.data() + offset % 2;
        std::vector<uint32_t> expected(count, 0xdeadbeef);
        kernel::MatchRowsScalar(target_row, rows, stride, words,
                                /*ids=*/nullptr, count, expected.data());
        std::vector<uint32_t> expected_gather(count, 0xdeadbeef);
        kernel::MatchRowsScalar(target_row, rows, stride, words, ids.data(),
                                count, expected_gather.data());
        for (Isa isa : SupportedIsas()) {
          const kernel::KernelOps* ops = kernel::KernelsFor(isa);
          std::vector<uint32_t> got(count, 0xfeedface);
          ops->match_rows(target_row, rows, stride, words, /*ids=*/nullptr,
                          count, got.data());
          EXPECT_EQ(got, expected)
              << kernel::IsaName(isa) << " streaming words=" << words
              << " count=" << count << " offset=" << offset;
          std::vector<uint32_t> got_gather(count, 0xfeedface);
          ops->match_rows(target_row, rows, stride, words, ids.data(), count,
                          got_gather.data());
          EXPECT_EQ(got_gather, expected_gather)
              << kernel::IsaName(isa) << " gather words=" << words
              << " count=" << count << " offset=" << offset;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Raw bounds kernel equivalence.
// ---------------------------------------------------------------------------

TEST(BoundsKernelTest, AllIsasMatchScalarAcrossCardinalities) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int32_t> table_value(0, 500);
  for (uint32_t cardinality = 0; cardinality <= 31; ++cardinality) {
    std::vector<int32_t> d0(cardinality), d1(cardinality), m0(cardinality),
        m1(cardinality);
    for (uint32_t j = 0; j < cardinality; ++j) {
      d0[j] = table_value(rng);
      d1[j] = table_value(rng);
      m0[j] = table_value(rng);
      m1[j] = table_value(rng);
    }
    // Counts straddle every vector width (4/8/16 lanes) and their tails.
    for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{16},
                         size_t{33}, size_t{100}}) {
      std::vector<uint32_t> coords(count);
      for (uint32_t& c : coords) {
        // Full 32-bit range: bits at and above `cardinality` must be ignored.
        c = static_cast<uint32_t>(rng());
      }
      std::vector<int32_t> expected_dist(count, -1), expected_match(count, -1);
      kernel::BoundsBatchScalar(coords.data(), count, cardinality, d0.data(),
                                d1.data(), m0.data(), m1.data(),
                                expected_dist.data(), expected_match.data());
      for (Isa isa : SupportedIsas()) {
        std::vector<int32_t> dist(count, -2), match(count, -2);
        kernel::KernelsFor(isa)->bounds_batch(coords.data(), count,
                                              cardinality, d0.data(), d1.data(),
                                              m0.data(), m1.data(), dist.data(),
                                              match.data());
        EXPECT_EQ(dist, expected_dist)
            << kernel::IsaName(isa) << " K=" << cardinality << " n=" << count;
        EXPECT_EQ(match, expected_match)
            << kernel::IsaName(isa) << " K=" << cardinality << " n=" << count;
      }
    }
  }
}

TEST(BoundsKernelTest, ComputeBatchMatchesComputePerEntry) {
  IsaGuard guard;
  std::mt19937_64 rng(777);
  for (size_t k : {size_t{1}, size_t{5}, size_t{11}, size_t{20}, size_t{31}}) {
    for (int r : {1, 2, 4}) {
      std::vector<int> counts(k);
      for (int& c : counts) c = static_cast<int>(rng() % 12);
      BoundCalculator calculator(counts, r);
      std::vector<Supercoordinate> coords(257);
      for (Supercoordinate& c : coords) c = static_cast<uint32_t>(rng());
      for (Isa isa : SupportedIsas()) {
        kernel::ForceIsa(isa);
        std::vector<int32_t> match(coords.size()), dist(coords.size());
        calculator.ComputeBatch(coords.data(), coords.size(), match.data(),
                                dist.data());
        for (size_t i = 0; i < coords.size(); ++i) {
          const OptimisticBounds bounds = calculator.Compute(coords[i]);
          ASSERT_EQ(match[i], bounds.match_upper)
              << kernel::IsaName(isa) << " K=" << k << " r=" << r;
          ASSERT_EQ(dist[i], bounds.dist_lower)
              << kernel::IsaName(isa) << " K=" << k << " r=" << r;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Band map and blocked layout construction.
// ---------------------------------------------------------------------------

TEST(ItemBandMapTest, SmallUniverseIsFullyDense) {
  std::vector<uint64_t> freq(100, 1);
  const auto map = kernel::ItemBandMap::Build(freq, /*max_dense_bits=*/1024);
  EXPECT_EQ(map.universe_size(), 100u);
  EXPECT_EQ(map.dense_items(), 100u);
  EXPECT_EQ(map.dense_bits(), 128u);  // Rounded up to a word.
  EXPECT_EQ(map.dense_words(), 2u);
  for (uint32_t item = 0; item < 100; ++item) {
    EXPECT_EQ(map.DenseSlot(item), item);  // Identity mapping.
  }
}

TEST(ItemBandMapTest, WideUniverseKeepsMostFrequentItems) {
  // Item i has frequency i: the top-64 items are 936..999.
  std::vector<uint64_t> freq(1000);
  for (size_t i = 0; i < freq.size(); ++i) freq[i] = i;
  const auto map = kernel::ItemBandMap::Build(freq, /*max_dense_bits=*/100);
  EXPECT_EQ(map.dense_bits(), 64u);  // 100 rounds down to 64.
  EXPECT_EQ(map.dense_items(), 64u);
  for (uint32_t item = 0; item < 936; ++item) {
    EXPECT_EQ(map.DenseSlot(item), kernel::ItemBandMap::kNotDense);
  }
  // Chosen items get slots in ascending item-id order.
  for (uint32_t item = 936; item < 1000; ++item) {
    EXPECT_EQ(map.DenseSlot(item), item - 936);
  }
}

TEST(ItemBandMapTest, FrequencyTiesBreakTowardSmallerIds) {
  std::vector<uint64_t> freq(256, 7);  // All tied.
  const auto map = kernel::ItemBandMap::Build(freq, /*max_dense_bits=*/64);
  for (uint32_t item = 0; item < 64; ++item) {
    EXPECT_EQ(map.DenseSlot(item), item);
  }
  for (uint32_t item = 64; item < 256; ++item) {
    EXPECT_EQ(map.DenseSlot(item), kernel::ItemBandMap::kNotDense);
  }
}

TEST(ItemBandMapTest, ZeroCapacityIsAllSparse) {
  std::vector<uint64_t> freq(100, 3);
  const auto map = kernel::ItemBandMap::Build(freq, /*max_dense_bits=*/0);
  EXPECT_EQ(map.dense_bits(), 0u);
  EXPECT_EQ(map.dense_words(), 0u);
  for (uint32_t item = 0; item < 100; ++item) {
    EXPECT_EQ(map.DenseSlot(item), kernel::ItemBandMap::kNotDense);
  }
}

TEST(AlignedBufferTest, DataIs64ByteAlignedAndZeroed) {
  for (size_t words : {size_t{0}, size_t{1}, size_t{9}, size_t{1000}}) {
    kernel::AlignedWordBuffer buffer(words);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 64, 0u);
    for (size_t w = 0; w < words; ++w) EXPECT_EQ(buffer.data()[w], 0u);
  }
}

TEST(BlockedLayoutTest, RowsAndTailsMatchNaivePacking) {
  std::mt19937_64 rng(99);
  const uint32_t universe = 500;
  std::vector<std::vector<uint32_t>> txns(64);
  std::vector<uint64_t> freq(universe, 0);
  for (auto& txn : txns) {
    const size_t len = rng() % 20;
    std::vector<bool> used(universe, false);
    for (size_t i = 0; i < len; ++i) {
      const auto item = static_cast<uint32_t>(rng() % universe);
      if (!used[item]) {
        used[item] = true;
        txn.push_back(item);
        ++freq[item];
      }
    }
    std::sort(txn.begin(), txn.end());
  }
  auto band = kernel::ItemBandMap::Build(freq, /*max_dense_bits=*/128);
  kernel::BlockedLayout::Builder builder(band, txns.size(), 0);
  for (const auto& txn : txns) builder.AddRow(txn.data(), txn.size());
  const kernel::BlockedLayout layout = std::move(builder).Build();

  ASSERT_EQ(layout.num_rows(), txns.size());
  EXPECT_EQ(layout.words_per_row(), band.dense_words());
  EXPECT_EQ(layout.stride_words() % 8, 0u);  // 64-byte row pitch.
  EXPECT_GE(layout.stride_words(), layout.words_per_row());
  for (size_t r = 0; r < txns.size(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(layout.row(r)) % 64, 0u);
    EXPECT_EQ(layout.row_size(r), txns[r].size());
    // Rebuild the dense row + tail naively and compare.
    std::vector<uint64_t> expected_row(layout.words_per_row(), 0);
    std::vector<uint32_t> expected_tail;
    for (uint32_t item : txns[r]) {
      const uint32_t slot = band.DenseSlot(item);
      if (slot == kernel::ItemBandMap::kNotDense) {
        expected_tail.push_back(item);
      } else {
        expected_row[slot / 64] |= uint64_t{1} << (slot % 64);
      }
    }
    for (size_t w = 0; w < layout.words_per_row(); ++w) {
      EXPECT_EQ(layout.row(r)[w], expected_row[w]) << "row " << r;
    }
    const auto [tail, tail_count] = layout.tail(r);
    ASSERT_EQ(tail_count, expected_tail.size()) << "row " << r;
    EXPECT_TRUE(std::is_sorted(tail, tail + tail_count));
    for (size_t i = 0; i < tail_count; ++i) {
      EXPECT_EQ(tail[i], expected_tail[i]) << "row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// PackedTarget batch entry points vs the per-candidate probe / merge scan.
// ---------------------------------------------------------------------------

TransactionDatabase RandomDatabase(uint32_t universe, size_t size,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  TransactionDatabase db(universe);
  for (size_t i = 0; i < size; ++i) {
    const size_t len = 1 + rng() % 15;
    std::vector<ItemId> items;
    items.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      // Zipf-ish skew: half the draws land in the first 10% of the universe.
      const bool head = (rng() & 1) != 0;
      const uint32_t span = head ? std::max(1u, universe / 10) : universe;
      items.push_back(static_cast<ItemId>(rng() % span));
    }
    db.Add(Transaction(std::move(items)));
  }
  return db;
}

TEST(PackedTargetBatchTest, BatchMatchesProbeAcrossBandSplitsAndIsas) {
  IsaGuard guard;
  for (uint32_t universe : {50u, 300u, 2000u}) {
    const TransactionDatabase db = RandomDatabase(universe, 200, universe);
    for (uint32_t max_dense_bits : {0u, 64u, 256u, 1024u}) {
      CandidateLayoutConfig config;
      config.max_dense_bits = max_dense_bits;
      const CandidateLayout layout = CandidateLayout::Build(db, config);
      ASSERT_EQ(layout.num_rows(), db.size());

      const Transaction target =
          RandomDatabase(universe, 1, universe + 17).Get(0);
      // Gather form over a shuffled id subset + streaming form over a
      // middle slice, all ISAs, against the per-candidate probe (itself
      // pinned to the merge scan by transaction_test).
      std::vector<TransactionId> ids(db.size());
      std::iota(ids.begin(), ids.end(), 0u);
      std::mt19937_64 rng(7);
      std::shuffle(ids.begin(), ids.end(), rng);
      ids.resize(db.size() / 2 + 1);

      PackedTarget probe;
      probe.Assign(target, universe);
      for (Isa isa : SupportedIsas()) {
        kernel::ForceIsa(isa);
        PackedTarget packed;
        packed.Assign(target, universe, &layout);
        ASSERT_TRUE(packed.has_layout());

        std::vector<uint32_t> match(ids.size()), hamming(ids.size());
        packed.MatchAndHammingBatch(ids.data(), ids.size(), match.data(),
                                    hamming.data());
        for (size_t i = 0; i < ids.size(); ++i) {
          size_t expected_match = 0, expected_hamming = 0;
          probe.MatchAndHamming(db.Get(ids[i]), &expected_match,
                                &expected_hamming);
          ASSERT_EQ(match[i], expected_match)
              << kernel::IsaName(isa) << " universe=" << universe
              << " dense=" << max_dense_bits << " id=" << ids[i];
          ASSERT_EQ(hamming[i], expected_hamming)
              << kernel::IsaName(isa) << " universe=" << universe
              << " dense=" << max_dense_bits << " id=" << ids[i];
        }

        const TransactionId first = static_cast<TransactionId>(db.size() / 3);
        const size_t count = db.size() / 2;
        std::vector<uint32_t> row_match(count), row_hamming(count);
        packed.MatchAndHammingRows(first, count, row_match.data(),
                                   row_hamming.data());
        for (size_t i = 0; i < count; ++i) {
          size_t expected_match = 0, expected_hamming = 0;
          probe.MatchAndHamming(db.Get(first + static_cast<TransactionId>(i)),
                                &expected_match, &expected_hamming);
          ASSERT_EQ(row_match[i], expected_match) << kernel::IsaName(isa);
          ASSERT_EQ(row_hamming[i], expected_hamming) << kernel::IsaName(isa);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-query equivalence under every forced ISA.
// ---------------------------------------------------------------------------

TEST(ForcedIsaSweepTest, FindKNearestBitIdenticalToReferenceUnderEveryIsa) {
  IsaGuard guard;
  QuestGeneratorConfig gen_config;
  gen_config.universe_size = 300;
  gen_config.num_large_itemsets = 70;
  gen_config.avg_itemset_size = 5.0;
  gen_config.avg_transaction_size = 9.0;
  gen_config.seed = 20260807;
  QuestGenerator generator(gen_config);
  const TransactionDatabase db = generator.GenerateDatabase(1200);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 9;
  const SignatureTable table = BuildIndex(db, build);
  const BranchAndBoundEngine engine(&db, &table);
  const auto queries = generator.GenerateQueries(8);

  const MatchRatioFamily match_ratio;
  const InverseHammingFamily hamming;
  const CosineFamily cosine;
  const SimilarityFamily* const families[] = {&match_ratio, &hamming, &cosine};
  for (const SimilarityFamily* family : families) {
    for (const Transaction& target : queries) {
      const NearestNeighborResult reference =
          engine.FindKNearestReference(target, *family, /*k=*/5);
      for (Isa isa : SupportedIsas()) {
        kernel::ForceIsa(isa);
        QueryContext context;
        const NearestNeighborResult got =
            engine.FindKNearest(target, *family, /*k=*/5, {}, &context);
        ASSERT_EQ(got.neighbors.size(), reference.neighbors.size())
            << kernel::IsaName(isa) << " " << family->name();
        for (size_t i = 0; i < got.neighbors.size(); ++i) {
          EXPECT_EQ(got.neighbors[i].id, reference.neighbors[i].id)
              << kernel::IsaName(isa) << " " << family->name();
          EXPECT_EQ(got.neighbors[i].similarity,
                    reference.neighbors[i].similarity)
              << kernel::IsaName(isa) << " " << family->name();
        }
        EXPECT_EQ(got.guaranteed_exact, reference.guaranteed_exact);
      }
    }
  }
}

TEST(ForcedIsaSweepTest, SteadyStateBatchPathIsAllocationFree) {
  IsaGuard guard;
  QuestGeneratorConfig gen_config;
  gen_config.universe_size = 200;
  gen_config.seed = 11;
  QuestGenerator generator(gen_config);
  const TransactionDatabase db = generator.GenerateDatabase(800);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  const SignatureTable table = BuildIndex(db, build);
  const BranchAndBoundEngine engine(&db, &table);
  const MatchRatioFamily family;
  const auto queries = generator.GenerateQueries(6);

  for (Isa isa : SupportedIsas()) {
    kernel::ForceIsa(isa);
    QueryContext context;
    NearestNeighborResult result;
    // Warm-up pass grows every scratch buffer (including the new kernel
    // batch scratch), then the steady state must not allocate at all.
    for (const Transaction& target : queries) {
      engine.FindKNearest(target, family, /*k=*/4, {}, &context, &result);
    }
    {
      ScopedAllocationBan ban("kernel-batch steady-state FindKNearest");
      for (const Transaction& target : queries) {
        engine.FindKNearest(target, family, /*k=*/4, {}, &context, &result);
      }
    }
  }
}

}  // namespace
}  // namespace mbi
