#include <gtest/gtest.h>

#include <set>

#include "core/clustering.h"
#include "core/signature_partition.h"
#include "gen/quest_generator.h"
#include "mining/support_counter.h"

namespace mbi {
namespace {

// --- SignaturePartition ---

TEST(SignaturePartitionTest, MapsItemsBothWays) {
  // Paper §3's example: P = {1,2,4,6,8,11,18}, Q = {3,5,7,9,10,16,20}-ish
  // over a 0-based universe of 8 items here.
  SignaturePartition partition(3, {0, 0, 1, 2, 1, 0, 2, 1});
  EXPECT_EQ(partition.cardinality(), 3u);
  EXPECT_EQ(partition.universe_size(), 8u);
  EXPECT_EQ(partition.SignatureOf(0), 0u);
  EXPECT_EQ(partition.SignatureOf(7), 1u);
  EXPECT_EQ(partition.ItemsOf(0), (std::vector<ItemId>{0, 1, 5}));
  EXPECT_EQ(partition.ItemsOf(1), (std::vector<ItemId>{2, 4, 7}));
  EXPECT_EQ(partition.ItemsOf(2), (std::vector<ItemId>{3, 6}));
}

TEST(SignaturePartitionTest, CountsPerSignature) {
  SignaturePartition partition(3, {0, 0, 1, 2, 1, 0, 2, 1});
  Transaction t({0, 1, 3, 7});
  EXPECT_EQ(partition.CountsPerSignature(t), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(partition.CountsPerSignature(Transaction{}),
            (std::vector<int>{0, 0, 0}));
}

TEST(SignaturePartitionTest, RejectsOutOfRangeSignature) {
  EXPECT_DEATH(SignaturePartition(2, {0, 1, 2}), "out-of-range");
}

TEST(SignaturePartitionTest, RejectsExcessiveCardinality) {
  EXPECT_DEATH(SignaturePartition(32, std::vector<uint32_t>(40, 0)), "");
}

// --- Clustering ---

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 5) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 80;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  return config;
}

class ClusteringTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClusteringTest, ProducesValidPartitionOfRequestedCardinality) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(2000);
  SupportCounter supports(db);
  ClusteringConfig config;
  config.target_cardinality = GetParam();
  SignaturePartition partition =
      BuildSignaturesSingleLinkage(supports, config);

  EXPECT_EQ(partition.cardinality(), GetParam());
  EXPECT_EQ(partition.universe_size(), db.universe_size());
  // Every item in exactly one signature; none empty.
  std::set<ItemId> seen;
  for (uint32_t s = 0; s < partition.cardinality(); ++s) {
    EXPECT_FALSE(partition.ItemsOf(s).empty()) << "signature " << s;
    for (ItemId item : partition.ItemsOf(s)) {
      EXPECT_TRUE(seen.insert(item).second) << "item in two signatures";
      EXPECT_EQ(partition.SignatureOf(item), s);
    }
  }
  EXPECT_EQ(seen.size(), db.universe_size());
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, ClusteringTest,
                         ::testing::Values(2u, 8u, 13u, 15u, 20u));

TEST(ClusteringTest, KeepsCorrelatedItemsTogether) {
  // Build data from *independent* itemsets (correlation_fraction = 0), so
  // each planted itemset is a separable clique in the co-occurrence graph;
  // single linkage must put strongly co-occurring pairs in one signature far
  // more often than a correlation-blind partitioner does. (With chained
  // itemsets — the default — the strong pairs form one giant component and
  // *every* K-way partition cuts most of them, so cohesion is not a
  // meaningful yardstick there.)
  QuestGeneratorConfig gc;
  gc.universe_size = 400;
  gc.num_large_itemsets = 40;
  gc.avg_itemset_size = 5.0;
  gc.avg_transaction_size = 8.0;
  gc.correlation_fraction = 0.0;
  gc.seed = 17;
  QuestGenerator generator(gc);
  TransactionDatabase db = generator.GenerateDatabase(4000);
  SupportCounter supports(db);

  ClusteringConfig config;
  config.target_cardinality = 10;
  SignaturePartition linked = BuildSignaturesSingleLinkage(supports, config);
  SignaturePartition balanced = BuildSignaturesBalanced(supports, 10);

  auto cohesion = [&](const SignaturePartition& partition) {
    // Fraction of the strongest co-occurrence pairs that land in the same
    // signature.
    auto pairs = supports.PairsWithMinCount(40);
    if (pairs.empty()) return 0.0;
    size_t together = 0;
    for (const auto& pair : pairs) {
      together += partition.SignatureOf(pair.a) == partition.SignatureOf(pair.b);
    }
    return static_cast<double>(together) / static_cast<double>(pairs.size());
  };

  // Cliques overlap by chance (shared items) and popular cliques can seal
  // mid-merge, so perfect cohesion is unattainable even for an optimal
  // partition; what must hold is a wide margin over the correlation-blind
  // control.
  EXPECT_GT(cohesion(linked), 0.35);
  EXPECT_GT(cohesion(linked), cohesion(balanced) + 0.1);
}

TEST(ClusteringTest, BalancedPartitionerBalancesMass) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(1000);
  SupportCounter supports(db);
  SignaturePartition partition = BuildSignaturesBalanced(supports, 8);

  double total = 0.0;
  std::vector<double> masses(8, 0.0);
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    masses[partition.SignatureOf(item)] += supports.ItemSupport(item);
    total += supports.ItemSupport(item);
  }
  for (double mass : masses) {
    EXPECT_NEAR(mass, total / 8.0, total / 8.0 * 0.25);
  }
}

TEST(ClusteringTest, SingleLinkageMassesAreBoundedByCriticalMassGrowth) {
  // Sealed components stop growing once past critical mass, so no signature
  // should dwarf the mean by more than one merge's worth; this is a sanity
  // band, not an exact invariant.
  QuestGenerator generator(GeneratorConfig(11));
  TransactionDatabase db = generator.GenerateDatabase(3000);
  SupportCounter supports(db);
  ClusteringConfig config;
  config.target_cardinality = 12;
  SignaturePartition partition =
      BuildSignaturesSingleLinkage(supports, config);

  double total = 0.0;
  std::vector<double> masses(12, 0.0);
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    masses[partition.SignatureOf(item)] += supports.ItemSupport(item);
    total += supports.ItemSupport(item);
  }
  for (double mass : masses) {
    EXPECT_LT(mass, 3.0 * total / 12.0);
  }
}

TEST(ClusteringTest, WorksWhenUniverseEqualsCardinality) {
  TransactionDatabase db(4);
  db.Add(Transaction({0, 1}));
  db.Add(Transaction({2, 3}));
  SupportCounter supports(db);
  ClusteringConfig config;
  config.target_cardinality = 4;
  SignaturePartition partition =
      BuildSignaturesSingleLinkage(supports, config);
  EXPECT_EQ(partition.cardinality(), 4u);
  for (uint32_t s = 0; s < 4; ++s) EXPECT_EQ(partition.ItemsOf(s).size(), 1u);
}

TEST(ClusteringTest, RejectsUniverseSmallerThanCardinality) {
  TransactionDatabase db(3);
  db.Add(Transaction({0, 1, 2}));
  SupportCounter supports(db);
  ClusteringConfig config;
  config.target_cardinality = 5;
  EXPECT_DEATH(BuildSignaturesSingleLinkage(supports, config), "smaller");
}

}  // namespace
}  // namespace mbi
