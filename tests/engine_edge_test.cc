#include <gtest/gtest.h>

#include <cmath>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

/// Edge cases of the query engine that the main suites do not reach:
/// degenerate targets, degenerate databases, duplicate-heavy data, and the
/// interplay between the approximation knobs.

SignatureTable BuildOver(const TransactionDatabase& db, uint32_t k,
                         int r = 1) {
  IndexBuildConfig build;
  build.clustering.target_cardinality = k;
  build.table.activation_threshold = r;
  return BuildIndex(db, build);
}

TEST(EngineEdgeTest, EmptyTargetIsAnswered) {
  // An empty basket matches nothing; under inverse Hamming its nearest
  // neighbour is simply the smallest transaction.
  QuestGeneratorConfig config;
  config.universe_size = 100;
  config.num_large_itemsets = 20;
  config.seed = 1201;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(500);
  SignatureTable table = BuildOver(db, 6);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  InverseHammingFamily family;

  Transaction empty;
  auto result = engine.FindNearest(empty, family);
  auto oracle = scanner.FindKNearest(empty, family, 1);
  EXPECT_TRUE(result.guaranteed_exact);
  EXPECT_EQ(result.neighbors[0].similarity, oracle[0].similarity);
}

TEST(EngineEdgeTest, TargetCoveringTheWholeUniverse) {
  TransactionDatabase db(16);
  for (ItemId i = 0; i < 16; ++i) db.Add(Transaction({i}));
  SignaturePartition partition(
      4, {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;

  std::vector<ItemId> all;
  for (ItemId i = 0; i < 16; ++i) all.push_back(i);
  auto result = engine.FindNearest(Transaction(all), family);
  EXPECT_TRUE(result.guaranteed_exact);
  // Every row shares exactly 1 item, differs in 15: similarity 1/15,
  // smallest id wins the tie.
  EXPECT_EQ(result.neighbors[0].id, 0u);
  EXPECT_DOUBLE_EQ(result.neighbors[0].similarity, 1.0 / 15.0);
}

TEST(EngineEdgeTest, SingleTransactionDatabase) {
  TransactionDatabase db(10);
  db.Add(Transaction({1, 2, 3}));
  SignaturePartition partition(2, {0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  BranchAndBoundEngine engine(&db, &table);
  CosineFamily family;
  auto result = engine.FindKNearest(Transaction({1, 2, 3}), family, 5);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].id, 0u);
  EXPECT_DOUBLE_EQ(result.neighbors[0].similarity, 1.0);
  EXPECT_TRUE(result.guaranteed_exact);
}

TEST(EngineEdgeTest, AllIdenticalTransactions) {
  TransactionDatabase db(10);
  for (int i = 0; i < 50; ++i) db.Add(Transaction({2, 4, 6}));
  SignaturePartition partition(2, {0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  EXPECT_EQ(table.entries().size(), 1u);
  BranchAndBoundEngine engine(&db, &table);
  InverseHammingFamily family;
  auto result = engine.FindKNearest(Transaction({2, 4, 6}), family, 3);
  ASSERT_EQ(result.neighbors.size(), 3u);
  // Identical rows: +inf similarity, ids in ascending order.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isinf(result.neighbors[i].similarity));
    EXPECT_EQ(result.neighbors[i].id, i);
  }
}

TEST(EngineEdgeTest, GapAndTerminationCompose) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.seed = 1213;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(3000);
  SignatureTable table = BuildOver(db, 10);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;

  SearchOptions options;
  options.optimality_gap = 0.25;
  options.max_access_fraction = 0.05;
  for (int q = 0; q < 6; ++q) {
    Transaction target = generator.NextTransaction();
    auto result = engine.FindNearest(target, family, options);
    auto oracle = scanner.FindKNearest(target, family, 1);
    // The uniform quality bound must hold with both knobs active.
    EXPECT_GE(std::max(result.neighbors[0].similarity,
                       result.best_unscanned_bound),
              oracle[0].similarity);
    EXPECT_LE(result.stats.transactions_evaluated, db.size());
  }
}

TEST(EngineEdgeTest, RangeQueryWithImpossibleThresholdScansNothing) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = 1217;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(1000);
  SignatureTable table = BuildOver(db, 8);
  BranchAndBoundEngine engine(&db, &table);
  CosineFamily family;
  // Cosine can never exceed 1.
  auto result = engine.FindInRange(generator.NextTransaction(), family, 1.5);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_TRUE(result.guaranteed_complete);
  EXPECT_EQ(result.stats.entries_scanned, 0u);
  EXPECT_EQ(result.stats.entries_pruned, result.stats.entries_total);
}

TEST(EngineEdgeTest, RangeQueryWithMinusInfinityThresholdReturnsEverything) {
  QuestGeneratorConfig config;
  config.universe_size = 150;
  config.num_large_itemsets = 30;
  config.seed = 1223;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(400);
  SignatureTable table = BuildOver(db, 6);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  auto result = engine.FindInRange(generator.NextTransaction(), family, 0.0);
  EXPECT_EQ(result.matches.size(), db.size());
}

TEST(EngineEdgeTest, HigherActivationThresholdStillExact) {
  // r = 3 with small transactions collapses most coordinates to zero — the
  // degenerate-but-legal regime must stay exact (just with weak pruning).
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.avg_transaction_size = 5.0;
  config.seed = 1229;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(800);
  SignatureTable table = BuildOver(db, 8, /*r=*/3);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  InverseHammingFamily family;
  for (int q = 0; q < 5; ++q) {
    Transaction target = generator.NextTransaction();
    auto result = engine.FindNearest(target, family);
    auto oracle = scanner.FindKNearest(target, family, 1);
    EXPECT_TRUE(result.guaranteed_exact);
    bool both_inf = std::isinf(result.neighbors[0].similarity) &&
                    std::isinf(oracle[0].similarity);
    EXPECT_TRUE(both_inf ||
                result.neighbors[0].similarity == oracle[0].similarity);
  }
}

TEST(EngineEdgeTest, MultiTargetWithIdenticalTargets) {
  // Averaging n copies of the same target must equal the single-target
  // result.
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = 1231;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(600);
  SignatureTable table = BuildOver(db, 8);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;

  Transaction target = generator.NextTransaction();
  auto single = engine.FindKNearest(target, family, 3);
  auto multi =
      engine.FindKNearestMultiTarget({target, target, target}, family, 3);
  ASSERT_EQ(single.neighbors.size(), multi.neighbors.size());
  for (size_t i = 0; i < single.neighbors.size(); ++i) {
    EXPECT_EQ(single.neighbors[i].id, multi.neighbors[i].id);
    EXPECT_DOUBLE_EQ(single.neighbors[i].similarity,
                     multi.neighbors[i].similarity);
  }
}

}  // namespace
}  // namespace mbi
