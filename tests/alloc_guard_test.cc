// The allocation interposer itself (util/alloc_guard.h): the ban must see
// allocations made under it, nest correctly, stay thread-local, and
// degrade to an inert no-op when the library was built with NDEBUG. The
// MBI_HOT steady-state assertions in query_context_test.cc stand on these
// properties, so they get their own coverage.

#include "util/alloc_guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace mbi {
namespace {

/// A heap allocation the optimizer cannot elide: the pointer escapes
/// through a volatile sink before being freed.
void ForceHeapAllocation() {
  int* raw = new int(42);
  volatile int* sink = raw;
  (void)sink;
  delete raw;
}

TEST(AllocGuardTest, UnbannedAllocationsAreNotViolations) {
  const uint64_t before = AllocGuardViolations();
  ForceHeapAllocation();
  auto owned = std::make_unique<int>(7);
  EXPECT_EQ(*owned, 7);
  EXPECT_EQ(AllocGuardViolations(), before);
}

TEST(AllocGuardTest, BanTriggersOnNew) {
  const uint64_t before = AllocGuardViolations();
  {
    ScopedAllocationBan ban("BanTriggersOnNew");
    ForceHeapAllocation();
  }
  if (AllocGuardEnabled()) {
    EXPECT_GT(AllocGuardViolations(), before)
        << "debug build: an allocation under the ban must count";
  } else {
    EXPECT_EQ(AllocGuardViolations(), before)
        << "release build: the guard must be a no-op";
  }
  // Either way the ban has lifted: allocations are free again.
  const uint64_t after = AllocGuardViolations();
  ForceHeapAllocation();
  EXPECT_EQ(AllocGuardViolations(), after);
}

TEST(AllocGuardTest, NestedBansAreReentrancySafe) {
  const uint64_t before = AllocGuardViolations();
  {
    ScopedAllocationBan outer("outer");
    {
      ScopedAllocationBan inner("inner");
      ForceHeapAllocation();
    }
    // The inner ban's destruction must not lift the outer ban.
    ForceHeapAllocation();
  }
  if (AllocGuardEnabled()) {
    EXPECT_EQ(AllocGuardViolations(), before + 2);
  } else {
    EXPECT_EQ(AllocGuardViolations(), before);
  }
  ForceHeapAllocation();  // Fully unbanned again.
  EXPECT_EQ(AllocGuardViolations(),
            AllocGuardEnabled() ? before + 2 : before);
}

TEST(AllocGuardTest, BanIsThreadLocal) {
  const uint64_t before = AllocGuardViolations();
  // The worker is spawned BEFORE the ban (std::thread construction itself
  // allocates) and allocates only while the main thread is banned: not a
  // violation on either thread (batch-pool workers must stay invisible to
  // a caller-side ban).
  std::atomic<int> stage{0};
  std::thread worker([&stage] {
    while (stage.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    const uint64_t worker_before = AllocGuardViolations();
    ForceHeapAllocation();
    EXPECT_EQ(AllocGuardViolations(), worker_before);
    stage.store(2, std::memory_order_release);
  });
  {
    ScopedAllocationBan ban("main thread only");
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();
    }
  }
  worker.join();
  EXPECT_EQ(AllocGuardViolations(), before);
}

TEST(AllocGuardTest, ViolationCountIsMonotonic) {
  const uint64_t a = AllocGuardViolations();
  {
    ScopedAllocationBan ban("first");
    ForceHeapAllocation();
  }
  const uint64_t b = AllocGuardViolations();
  EXPECT_GE(b, a);
  {
    ScopedAllocationBan ban("second");
    ForceHeapAllocation();
  }
  EXPECT_GE(AllocGuardViolations(), b);
}

}  // namespace
}  // namespace mbi
