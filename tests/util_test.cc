#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/alias_sampler.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace mbi {
namespace {

// --- AliasSampler ---

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({1.0, 3.0});
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOf(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOf(1), 0.75);
  EXPECT_EQ(sampler.size(), 2u);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatchWeights) {
  std::vector<double> weights = {0.5, 2.0, 0.0, 4.0, 1.5};
  AliasSampler sampler(weights);
  Rng rng(101);
  std::vector<int> histogram(weights.size(), 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++histogram[sampler.Sample(&rng)];
  double total = 8.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(histogram[i] / static_cast<double>(kDraws),
                weights[i] / total, 0.01)
        << "index " << i;
  }
  EXPECT_EQ(histogram[2], 0);  // Zero weight must never be drawn.
}

TEST(AliasSamplerTest, SingleBucket) {
  AliasSampler sampler({7.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(AliasSampler({0.0, 0.0}), "positive total");
}

TEST(AliasSamplerTest, RejectsNegativeWeights) {
  EXPECT_DEATH(AliasSampler({1.0, -0.5}), "non-negative");
}

// --- TablePrinter ---

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Format(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Format(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Format(int64_t{42}), "42");
}

TEST(TablePrinterTest, PrintsAlignedColumns) {
  TablePrinter table({"a", "long_header"});
  table.AddRow({"12345", "x"});
  char buffer[256] = {};
  FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.Print(stream);
  std::fclose(stream);
  std::string text(buffer);
  EXPECT_NE(text.find("a      long_header"), std::string::npos);
  EXPECT_NE(text.find("12345  x"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinterTest, PrintsCsv) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  char buffer[256] = {};
  FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.PrintCsv(stream);
  std::fclose(stream);
  EXPECT_STREQ(buffer, "x,y\n1,2\n3,4\n");
}

TEST(TablePrinterTest, RejectsRaggedRows) {
  TablePrinter table({"x", "y"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "size");
}

// --- FlagParser ---

TEST(FlagParserTest, ParsesAllTypesAndForms) {
  FlagParser parser("test");
  int64_t count = 0;
  double ratio = 0.0;
  std::string name;
  bool verbose = false;
  parser.AddInt64("count", 7, "a count", &count);
  parser.AddDouble("ratio", 0.5, "a ratio", &ratio);
  parser.AddString("name", "default", "a name", &name);
  parser.AddBool("verbose", false, "verbosity", &verbose);

  const char* argv[] = {"prog", "--count=42", "--ratio", "2.5",
                        "--name=alice", "--verbose"};
  EXPECT_TRUE(parser.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 2.5);
  EXPECT_EQ(name, "alice");
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, DefaultsSurviveWhenAbsent) {
  FlagParser parser("test");
  int64_t count = 0;
  parser.AddInt64("count", 7, "a count", &count);
  const char* argv[] = {"prog"};
  EXPECT_TRUE(parser.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(count, 7);
}

TEST(FlagParserTest, HelpReturnsFalse) {
  FlagParser parser("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagParserDeathTest, UnknownFlagExits) {
  FlagParser parser("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_EXIT(parser.Parse(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "Unknown flag");
}

TEST(FlagParserDeathTest, MalformedIntExits) {
  FlagParser parser("test");
  int64_t count = 0;
  parser.AddInt64("count", 7, "a count", &count);
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_EXIT(parser.Parse(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "expects an integer");
}

}  // namespace
}  // namespace mbi
