#include "util/status.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/fault_injector.h"
#include "util/crc32c.h"
#include "util/deadline_clock.h"
#include "util/retry.h"
#include "util/rng.h"

namespace mbi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status corrupt = Status::Corruption("index.mbst: bad section");
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), StatusCode::kCorruption);
  EXPECT_EQ(corrupt.message(), "index.mbst: bad section");
  EXPECT_EQ(corrupt.ToString(), "corruption: index.mbst: bad section");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NoSpace("x").code(), StatusCode::kNoSpace);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FromCode(StatusCode::kNoSpace, "disk full").ToString(),
            "no space: disk full");
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());

  StatusOr<int> error(Status::NotFound("missing"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, SupportsMoveOnlyPayloads) {
  StatusOr<std::unique_ptr<int>> boxed(std::make_unique<int>(7));
  ASSERT_TRUE(boxed.ok());
  EXPECT_EQ(**boxed, 7);
  std::unique_ptr<int> taken = std::move(boxed).value();
  EXPECT_EQ(*taken, 7);
}

Status FailAt(int fail_step, int step) {
  if (step == fail_step) return Status::IoError("step " + std::to_string(step));
  return Status::Ok();
}

Status RunSteps(int fail_step) {
  MBI_RETURN_IF_ERROR(FailAt(fail_step, 0));
  MBI_RETURN_IF_ERROR(FailAt(fail_step, 1));
  return Status::Ok();
}

StatusOr<int> Double(StatusOr<int> input) {
  MBI_ASSIGN_OR_RETURN(int value, std::move(input));
  return value * 2;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_EQ(RunSteps(0).message(), "step 0");
  EXPECT_EQ(RunSteps(1).message(), "step 1");
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  auto doubled = Double(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  auto failed = Double(Status::Corruption("bad"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCorruption);
}

// --- CRC32C ------------------------------------------------------------

TEST(Crc32cTest, MatchesKnownVectors) {
  // The canonical CRC-32C check value, shared with iSCSI / LevelDB.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes, from RFC 3720 appendix B.4.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendEqualsOneShot) {
  const char* data = "durable artifact payload bytes";
  const size_t size = std::strlen(data);
  for (size_t split = 0; split <= size; ++split) {
    uint32_t prefix = Crc32c(data, split);
    EXPECT_EQ(Crc32cExtend(prefix, data + split, size - split),
              Crc32c(data, size))
        << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37);
  }
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    for (uint32_t bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "missed flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

// --- Retry / backoff ---------------------------------------------------

TEST(RetryTest, BackoffDoublesAndCaps) {
  RetryOptions options;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 8.0;
  options.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(options, 1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(options, 2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(options, 3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(options, 4, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(options, 9, nullptr), 8.0);  // capped
}

TEST(RetryTest, JitterIsDeterministicPerSeed) {
  RetryOptions options;
  Rng rng_a(77), rng_b(77), rng_c(78);
  std::vector<double> a, b, c;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    a.push_back(BackoffDelayMs(options, attempt, &rng_a));
    b.push_back(BackoffDelayMs(options, attempt, &rng_b));
    c.push_back(BackoffDelayMs(options, attempt, &rng_c));
  }
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (int attempt = 0; attempt < 5; ++attempt) {
    // Jitter keeps every delay within [1 - j, 1 + j] of the base schedule.
    double base = BackoffDelayMs(options, attempt + 1, nullptr);
    EXPECT_GE(a[static_cast<size_t>(attempt)],
              base * (1.0 - options.jitter));
    EXPECT_LE(a[static_cast<size_t>(attempt)],
              base * (1.0 + options.jitter));
  }
}

TEST(RetryTest, RetriesOnlyUnavailable) {
  RetryOptions options;
  options.max_attempts = 5;
  int slept = 0;
  options.sleep_ms = [&slept](double) { ++slept; };

  int calls = 0;
  Status status = RetryTransient(options, nullptr, [&calls] {
    ++calls;
    if (calls < 3) return Status::Unavailable("EAGAIN");
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept, 2);

  calls = 0;
  status = RetryTransient(options, nullptr, [&calls] {
    ++calls;
    return Status::Corruption("permanent");
  });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);  // non-transient codes are never retried
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 4;
  options.sleep_ms = [](double) {};
  int calls = 0;
  Status status = RetryTransient(options, nullptr, [&calls] {
    ++calls;
    return Status::Unavailable("still busy");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, RetryAfterHintIsClampedToRemainingDeadline) {
  // Regression for the oversleep bug: an overloaded server's retry_after_ms
  // hint used to be honored verbatim, so a caller with 10ms of budget left
  // could be parked for a 50ms nap. The hint (and the backoff) must be
  // clamped to what remains of the caller's deadline.
  ManualClock clock(1'000.0);  // now = 1000us
  RetryOptions options;
  options.max_attempts = 3;
  options.jitter = 0.0;
  options.initial_backoff_ms = 0.5;
  options.clock = &clock;
  options.deadline_us = 11'000.0;  // 10ms remaining
  std::vector<double> slept;
  options.sleep_ms = [&slept](double ms) { slept.push_back(ms); };

  RetryStats stats;
  Status status = RetryTransient(
      options, nullptr,
      [] { return Status::Unavailable("shed; retry_after_ms=50"); }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_FALSE(slept.empty());
  for (double ms : slept) {
    EXPECT_LE(ms, 10.0) << "slept past the caller's deadline";
  }
  EXPECT_DOUBLE_EQ(slept.front(), 10.0);  // min(hint=50, remaining=10)
  EXPECT_EQ(stats.attempts, options.max_attempts);
  EXPECT_LE(stats.backoff_ms, 10.0 * (options.max_attempts - 1));
}

TEST(RetryTest, StopsRetryingOncePastTheDeadline) {
  // An expired deadline means another attempt cannot be served in time:
  // the transient failure surfaces immediately, with zero sleeps.
  ManualClock clock(5'000.0);
  RetryOptions options;
  options.max_attempts = 6;
  options.clock = &clock;
  options.deadline_us = 4'000.0;  // already in the past
  int slept = 0;
  options.sleep_ms = [&slept](double) { ++slept; };

  int calls = 0;
  Status status = RetryTransient(options, nullptr, [&calls] {
    ++calls;
    return Status::Unavailable("busy; retry_after_ms=5");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);  // the mandatory first try, nothing after
  EXPECT_EQ(slept, 0);
}

TEST(RetryTest, UnlimitedDeadlineKeepsHonoringTheHint) {
  // Without a deadline the pre-existing contract holds: delay is
  // max(backoff, hint), uncapped by any clock.
  RetryOptions options;
  options.max_attempts = 2;
  options.jitter = 0.0;
  options.initial_backoff_ms = 1.0;
  std::vector<double> slept;
  options.sleep_ms = [&slept](double ms) { slept.push_back(ms); };

  Status status = RetryTransient(options, nullptr, [] {
    return Status::Unavailable("shed; retry_after_ms=25");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_DOUBLE_EQ(slept.front(), 25.0);
}

// --- FaultInjector spec parsing ----------------------------------------

TEST(FaultInjectorSpecTest, ParsesEveryKind) {
  auto injector = FaultInjector::FromSpec(
      "fail_write=3;nospace_write=5;torn_write=7:16;flip_bit=100:4;"
      "transient_write=2:3;fail_open=1;fail_rename=1;seed=42");
  ASSERT_TRUE(injector.ok()) << injector.status().ToString();
  EXPECT_EQ((*injector)->seed(), 42u);
}

TEST(FaultInjectorSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus=1", "fail_write", "fail_write=", "fail_write=abc",
        "torn_write=3", "flip_bit=5", "transient_write=1:2:3", ";;=;"}) {
    auto injector = FaultInjector::FromSpec(bad);
    EXPECT_FALSE(injector.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(injector.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FaultInjectorSpecTest, EmptySpecIsCleanInjector) {
  auto injector = FaultInjector::FromSpec("");
  ASSERT_TRUE(injector.ok());
  auto outcome = (*injector)->OnWrite("f", 0, "abc", 3);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.prefix, 3u);
}

}  // namespace
}  // namespace mbi
