#include "mining/pcy_counter.h"

#include <gtest/gtest.h>

#include <map>

#include "core/clustering.h"
#include "gen/quest_generator.h"
#include "mining/support_counter.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 701) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 80;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  return config;
}

TEST(PcyCounterTest, ItemCountsMatchExactCounter) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(2000);
  SupportCounter exact(db);
  PcyConfig config;
  config.min_pair_count = 5;
  PcyCounter pcy(db, config);
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    EXPECT_EQ(pcy.ItemCount(item), exact.ItemCount(item));
    EXPECT_DOUBLE_EQ(pcy.ItemSupport(item), exact.ItemSupport(item));
  }
}

class PcyAgreementTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PcyAgreementTest, QualifyingPairsAgreeWithExactCounterExactly) {
  // Parameterized over bucket counts, including one small enough to force
  // plenty of bucket collisions (false positives must still be filtered).
  QuestGenerator generator(GeneratorConfig(709));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  SupportCounter exact(db);
  PcyConfig config;
  config.min_pair_count = 8;
  config.num_hash_buckets = GetParam();
  PcyCounter pcy(db, config);

  auto exact_pairs = exact.PairsWithMinCount(8);
  auto pcy_pairs = pcy.PairsWithMinCount(8);
  std::map<std::pair<ItemId, ItemId>, uint64_t> exact_map, pcy_map;
  for (const auto& entry : exact_pairs) {
    exact_map[{entry.a, entry.b}] = entry.count;
  }
  for (const auto& entry : pcy_pairs) pcy_map[{entry.a, entry.b}] = entry.count;
  EXPECT_EQ(exact_map, pcy_map);

  // Point lookups agree on qualifying pairs.
  for (const auto& [pair, count] : exact_map) {
    EXPECT_EQ(pcy.PairCount(pair.first, pair.second), count);
  }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, PcyAgreementTest,
                         ::testing::Values(1u << 8, 1u << 12, 1u << 20));

TEST(PcyCounterTest, HigherMinCountFiltersFurther) {
  QuestGenerator generator(GeneratorConfig(719));
  TransactionDatabase db = generator.GenerateDatabase(1000);
  PcyConfig config;
  config.min_pair_count = 3;
  PcyCounter pcy(db, config);
  auto at3 = pcy.PairsWithMinCount(3);
  auto at20 = pcy.PairsWithMinCount(20);
  EXPECT_LT(at20.size(), at3.size());
  for (const auto& entry : at20) EXPECT_GE(entry.count, 20u);
}

TEST(PcyCounterTest, RejectsQueriesBelowConstructionThreshold) {
  QuestGenerator generator(GeneratorConfig(727));
  TransactionDatabase db = generator.GenerateDatabase(100);
  PcyConfig config;
  config.min_pair_count = 10;
  PcyCounter pcy(db, config);
  EXPECT_DEATH(pcy.PairsWithMinCount(5), "construction threshold");
}

TEST(PcyCounterTest, SmallBucketArrayStillExact) {
  // Degenerate single-bucket filter: everything survives pass 1, pass 2 is
  // a full recount — results still exact above the threshold.
  QuestGenerator generator(GeneratorConfig(733));
  TransactionDatabase db = generator.GenerateDatabase(500);
  SupportCounter exact(db);
  PcyConfig config;
  config.min_pair_count = 4;
  config.num_hash_buckets = 1;
  PcyCounter pcy(db, config);
  EXPECT_EQ(pcy.PairsWithMinCount(4).size(), exact.PairsWithMinCount(4).size());
}

TEST(PcyCounterTest, DrivesSignatureConstruction) {
  // PCY plugs into clustering through the SupportProvider interface; the
  // resulting partition must be valid and (since PCY is exact above its
  // threshold) identical to the exact counter's partition when the
  // clustering edge threshold is at or above PCY's.
  QuestGenerator generator(GeneratorConfig(739));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  SupportCounter exact(db);
  PcyConfig pcy_config;
  pcy_config.min_pair_count = 2;
  PcyCounter pcy(db, pcy_config);

  ClusteringConfig clustering;
  clustering.target_cardinality = 10;
  clustering.min_pair_support = 2.0 / 2000.0;
  SignaturePartition from_exact =
      BuildSignaturesSingleLinkage(exact, clustering);
  SignaturePartition from_pcy = BuildSignaturesSingleLinkage(pcy, clustering);
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    EXPECT_EQ(from_exact.SignatureOf(item), from_pcy.SignatureOf(item))
        << "item " << item;
  }
}

TEST(PcyCounterTest, FilterReducesCandidatePairs) {
  QuestGenerator generator(GeneratorConfig(743));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  PcyConfig strict;
  strict.min_pair_count = 20;
  strict.num_hash_buckets = 1 << 20;
  PcyCounter filtered(db, strict);

  SupportCounter exact(db);
  uint64_t all_pairs_seen = exact.PairsWithMinCount(1).size();
  EXPECT_LT(filtered.candidate_pairs(), all_pairs_seen);
  EXPECT_GT(filtered.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mbi
