#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/artifact_verify.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/partition_io.h"
#include "core/table_io.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "storage/env.h"
#include "storage/fault_injector.h"
#include "storage/page_store.h"
#include "txn/database_io.h"

namespace mbi {
namespace {

/// CI runs this binary under several MBI_FAULT_SEED values; the seed varies
/// the fixtures and the injector/backoff jitter streams, so each CI shard
/// walks the same crash matrix over different data.
uint64_t FaultSeed() {
  const char* env = std::getenv("MBI_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  std::fseek(file, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    bytes.clear();
  }
  std::fclose(file);
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  }
  ASSERT_EQ(std::fclose(file), 0);
}

void FlipByteInFile(const std::string& path, size_t offset, uint8_t mask) {
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= mask;
  WriteAllBytes(path, bytes);
}

TransactionDatabase MakeDatabase(uint64_t seed, uint64_t size) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.avg_transaction_size = 8.0;
  config.seed = seed;
  QuestGenerator generator(config);
  return generator.GenerateDatabase(size);
}

SignatureTable MakeTable(const TransactionDatabase& db,
                         uint32_t cardinality = 9) {
  IndexBuildConfig build;
  build.clustering.target_cardinality = cardinality;
  return BuildIndex(db, build);
}

// --- Crash-point matrix -------------------------------------------------
//
// For every write index of a save sequence, injects (a) a clean write
// failure and (b) a torn write keeping 3 bytes, and asserts the atomic-save
// contract: the save reports the fault, the previously committed artifact at
// `path` is byte-identical, and no temp residue is left behind. Then proves
// the fault-free save really produces the new artifact.
template <typename SaveFn, typename CheckOldFn, typename CheckNewFn>
void RunCrashMatrix(const std::string& path,
                    const std::vector<uint8_t>& old_bytes, SaveFn save_new,
                    CheckOldFn check_old, CheckNewFn check_new) {
  Env env(FaultSeed());
  FaultInjector injector(FaultSeed());
  env.set_fault_injector(&injector);
  const std::string temp = path + ".tmp";

  // Fault-free run: learn the number of write points and prove the new
  // artifact lands.
  WriteAllBytes(path, old_bytes);
  injector.Reset();
  Status clean = save_new(&env);
  ASSERT_TRUE(clean.ok()) << clean.ToString();
  const uint64_t write_points = injector.writes_seen();
  ASSERT_GE(write_points, 3u);  // header + at least one section
  EXPECT_FALSE(env.FileExists(temp));
  check_new(&env);

  for (uint64_t i = 0; i < write_points; ++i) {
    for (int torn = 0; torn < 2; ++torn) {
      WriteAllBytes(path, old_bytes);
      injector.Reset();
      if (torn != 0) {
        injector.TornWrite(i, 3);
      } else {
        injector.FailWrite(i);
      }
      Status failed = save_new(&env);
      ASSERT_FALSE(failed.ok())
          << "write " << i << (torn ? " torn" : " fail")
          << " was swallowed";
      EXPECT_EQ(failed.code(), StatusCode::kIoError);
      EXPECT_EQ(ReadAllBytes(path), old_bytes)
          << "write " << i << (torn ? " torn" : " fail")
          << " damaged the committed artifact";
      EXPECT_FALSE(env.FileExists(temp))
          << "write " << i << " left temp residue";
      check_old(&env);
    }
  }

  // The commit point itself: a failed rename must also keep the old bytes.
  WriteAllBytes(path, old_bytes);
  injector.Reset();
  injector.FailRename();
  Status failed = save_new(&env);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(ReadAllBytes(path), old_bytes);
  EXPECT_FALSE(env.FileExists(temp));
  check_old(&env);

  injector.Reset();
  std::remove(path.c_str());
}

void ExpectDatabasesEqual(const TransactionDatabase& a,
                          const TransactionDatabase& b) {
  ASSERT_EQ(a.universe_size(), b.universe_size());
  ASSERT_EQ(a.size(), b.size());
  for (TransactionId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.Get(id), b.Get(id));
  }
}

TEST(DurabilityTest, DatabaseSaveIsAtomicAtEveryWritePoint) {
  const uint64_t seed = FaultSeed();
  TransactionDatabase old_db = MakeDatabase(seed + 10, 120);
  TransactionDatabase new_db = MakeDatabase(seed + 11, 150);
  const std::string path = TempPath("atomic.mbid");

  ASSERT_TRUE(SaveDatabase(old_db, path).ok());
  const std::vector<uint8_t> old_bytes = ReadAllBytes(path);
  ASSERT_FALSE(old_bytes.empty());

  RunCrashMatrix(
      path, old_bytes,
      [&](Env* env) { return SaveDatabase(new_db, path, env); },
      [&](Env* env) {
        auto loaded = LoadDatabase(path, env);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        ExpectDatabasesEqual(*loaded, old_db);
      },
      [&](Env* env) {
        auto loaded = LoadDatabase(path, env);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        ExpectDatabasesEqual(*loaded, new_db);
      });
}

TEST(DurabilityTest, PartitionSaveIsAtomicAtEveryWritePoint) {
  SignaturePartition old_partition(4, {0, 1, 2, 3, 0, 1, 2, 3, 0, 1});
  SignaturePartition new_partition(5, {4, 3, 2, 1, 0, 4, 3, 2, 1, 0});
  const std::string path = TempPath("atomic.mbsp");

  ASSERT_TRUE(SavePartition(old_partition, path).ok());
  const std::vector<uint8_t> old_bytes = ReadAllBytes(path);

  auto check = [&](const SignaturePartition& expected) {
    return [&path, &expected](Env* env) {
      auto loaded = LoadPartition(path, env);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ASSERT_EQ(loaded->cardinality(), expected.cardinality());
      ASSERT_EQ(loaded->universe_size(), expected.universe_size());
      for (ItemId item = 0; item < expected.universe_size(); ++item) {
        ASSERT_EQ(loaded->SignatureOf(item), expected.SignatureOf(item));
      }
    };
  };
  RunCrashMatrix(
      path, old_bytes,
      [&](Env* env) { return SavePartition(new_partition, path, env); },
      check(old_partition), check(new_partition));
}

TEST(DurabilityTest, TableSaveIsAtomicAtEveryWritePoint) {
  const uint64_t seed = FaultSeed();
  TransactionDatabase db = MakeDatabase(seed + 20, 150);
  SignatureTable old_table = MakeTable(db, 8);
  SignatureTable new_table = MakeTable(db, 10);
  const std::string path = TempPath("atomic.mbst");

  ASSERT_TRUE(SaveSignatureTable(old_table, path).ok());
  const std::vector<uint8_t> old_bytes = ReadAllBytes(path);

  auto check = [&](const SignatureTable& expected) {
    return [&path, &db, &expected](Env* env) {
      auto loaded = LoadSignatureTable(path, db, env);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ASSERT_EQ(loaded->cardinality(), expected.cardinality());
      ASSERT_EQ(loaded->entries().size(), expected.entries().size());
      ASSERT_EQ(loaded->num_indexed_transactions(),
                expected.num_indexed_transactions());
    };
  };
  RunCrashMatrix(
      path, old_bytes,
      [&](Env* env) { return SaveSignatureTable(new_table, path, env); },
      check(old_table), check(new_table));
}

PageStore MakeSpillStore(uint32_t page_size, TransactionId transactions,
                         uint32_t bytes_each) {
  PageStore store(page_size);
  for (TransactionId id = 0; id < transactions; ++id) {
    store.Append(id, bytes_each);
  }
  return store;
}

void ExpectStoresEqual(const PageStore& a, const PageStore& b) {
  ASSERT_EQ(a.page_size_bytes(), b.page_size_bytes());
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a.pages()[p].used_bytes, b.pages()[p].used_bytes);
    ASSERT_EQ(a.pages()[p].transaction_ids, b.pages()[p].transaction_ids);
  }
}

TEST(DurabilityTest, PageSpillRoundTripsAndIsAtomic) {
  PageStore old_store = MakeSpillStore(128, 40, 24);
  PageStore new_store = MakeSpillStore(128, 64, 30);
  const std::string path = TempPath("atomic.mbpg");

  ASSERT_TRUE(old_store.SpillToFile(path).ok());
  const std::vector<uint8_t> old_bytes = ReadAllBytes(path);

  auto check = [&](const PageStore& expected) {
    return [&path, &expected](Env* env) {
      auto loaded = PageStore::LoadSpillFile(path, env);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectStoresEqual(*loaded, expected);
    };
  };
  RunCrashMatrix(
      path, old_bytes,
      [&](Env* env) { return new_store.SpillToFile(path, env); },
      check(old_store), check(new_store));
}

// --- Fault code propagation and retries ---------------------------------

TEST(DurabilityTest, NoSpaceFaultSurfacesAsNoSpace) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 30, 50);
  Env env(FaultSeed());
  FaultInjector injector(FaultSeed());
  env.set_fault_injector(&injector);
  injector.FailWrite(2, StatusCode::kNoSpace);

  const std::string path = TempPath("nospace.mbid");
  Status saved = SaveDatabase(db, path, &env);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kNoSpace);
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
}

TEST(DurabilityTest, TransientWriteFaultsAreRetriedToSuccess) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 31, 50);
  Env env(FaultSeed());
  FaultInjector injector(FaultSeed());
  env.set_fault_injector(&injector);
  injector.TransientWrites(2, 3);  // 3 EAGAINs on the third write, then OK

  int sleeps = 0;
  std::vector<double> delays;
  RetryOptions options;
  options.sleep_ms = [&](double ms) {
    ++sleeps;
    delays.push_back(ms);
  };
  env.set_retry_options(options);

  const std::string path = TempPath("transient.mbid");
  Status saved = SaveDatabase(db, path, &env);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  EXPECT_EQ(sleeps, 3);
  // Backoff grows (up to jitter) across the schedule.
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_GT(delays[2], delays[0] * 0.9);

  auto loaded = LoadDatabase(path, &env);
  ASSERT_TRUE(loaded.ok());
  ExpectDatabasesEqual(*loaded, db);
  std::remove(path.c_str());
}

TEST(DurabilityTest, TransientExhaustionFailsWithoutDamage) {
  TransactionDatabase old_db = MakeDatabase(FaultSeed() + 32, 40);
  TransactionDatabase new_db = MakeDatabase(FaultSeed() + 33, 60);
  const std::string path = TempPath("exhausted.mbid");
  ASSERT_TRUE(SaveDatabase(old_db, path).ok());
  const std::vector<uint8_t> old_bytes = ReadAllBytes(path);

  Env env(FaultSeed());
  FaultInjector injector(FaultSeed());
  env.set_fault_injector(&injector);
  injector.TransientWrites(1, 1000);  // more failures than any retry budget
  RetryOptions options;
  options.max_attempts = 4;
  options.sleep_ms = [](double) {};
  env.set_retry_options(options);

  Status saved = SaveDatabase(new_db, path, &env);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ReadAllBytes(path), old_bytes);
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(DurabilityTest, SilentBitRotIsCaughtByChecksumOnLoad) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 34, 80);
  const std::string path = TempPath("bitrot.mbid");

  // First learn the healthy size, then re-save with a flip in the middle.
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  const size_t file_size = ReadAllBytes(path).size();

  Env env(FaultSeed());
  FaultInjector injector(FaultSeed());
  env.set_fault_injector(&injector);
  injector.FlipBit(file_size / 2, 5);
  Status saved = SaveDatabase(db, path, &env);
  ASSERT_TRUE(saved.ok()) << "bit rot must be silent at write time";

  auto loaded = LoadDatabase(path, &env);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// --- Graceful degradation -----------------------------------------------

TEST(DurabilityTest, CorruptIndexIsQuarantinedAndServedSequentially) {
  const uint64_t seed = FaultSeed();
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed + 40;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(400);
  SignatureTable table = MakeTable(db);
  const std::string path = TempPath("quarantine.mbst");
  ASSERT_TRUE(SaveSignatureTable(table, path).ok());
  FlipByteInFile(path, ReadAllBytes(path).size() / 2, 0x08);

  SignatureTableEngine engine(&db);
  Status opened = engine.OpenIndex(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.code(), StatusCode::kCorruption);
  EXPECT_TRUE(engine.quarantined());
  EXPECT_FALSE(engine.healthy());
  EXPECT_EQ(engine.table(), nullptr);
  EXPECT_EQ(engine.quarantine_reason().code(), StatusCode::kCorruption);

  // Every query still gets an exact answer, via the sequential fallback.
  SequentialScanner scanner(&db);
  MatchRatioFamily family;
  uint64_t queries = 0;
  for (int q = 0; q < 5; ++q) {
    Transaction target = generator.NextTransaction();

    NearestNeighborResult result = engine.FindKNearest(target, family, 5);
    ++queries;
    auto oracle = scanner.FindKNearest(target, family, 5);
    EXPECT_TRUE(result.guaranteed_exact);
    EXPECT_EQ(result.stats.sequential_fallbacks, 1u);
    ASSERT_EQ(result.neighbors.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(result.neighbors[i].id, oracle[i].id);
      EXPECT_EQ(result.neighbors[i].similarity, oracle[i].similarity);
    }

    RangeQueryResult range = engine.FindInRange(target, family, 0.3);
    ++queries;
    auto range_oracle = scanner.FindInRange(target, family, 0.3);
    EXPECT_TRUE(range.guaranteed_complete);
    EXPECT_EQ(range.stats.sequential_fallbacks, 1u);
    ASSERT_EQ(range.matches.size(), range_oracle.size());
    for (size_t i = 0; i < range_oracle.size(); ++i) {
      EXPECT_EQ(range.matches[i].id, range_oracle[i].id);
    }
  }
  EXPECT_EQ(engine.fallback_queries(), queries);

  // Rebuilding (AdoptTable) leaves quarantine: back to branch-and-bound.
  engine.AdoptTable(MakeTable(db));
  EXPECT_TRUE(engine.healthy());
  EXPECT_FALSE(engine.quarantined());
  Transaction target = generator.NextTransaction();
  NearestNeighborResult healthy = engine.FindKNearest(target, family, 5);
  EXPECT_EQ(healthy.stats.sequential_fallbacks, 0u);
  EXPECT_EQ(engine.fallback_queries(), queries);  // unchanged
  std::remove(path.c_str());
}

TEST(DurabilityTest, HealthyIndexMatchesBranchAndBound) {
  const uint64_t seed = FaultSeed();
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed + 41;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(400);
  SignatureTable table = MakeTable(db);
  const std::string path = TempPath("healthy.mbst");
  ASSERT_TRUE(SaveSignatureTable(table, path).ok());

  SignatureTableEngine engine(&db);
  Status opened = engine.OpenIndex(path);
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  EXPECT_TRUE(engine.healthy());
  EXPECT_FALSE(engine.quarantined());
  ASSERT_NE(engine.table(), nullptr);

  BranchAndBoundEngine reference(&db, &table);
  MatchRatioFamily family;
  for (int q = 0; q < 5; ++q) {
    Transaction target = generator.NextTransaction();
    NearestNeighborResult via_engine = engine.FindKNearest(target, family, 5);
    NearestNeighborResult direct = reference.FindKNearest(target, family, 5);
    EXPECT_EQ(via_engine.stats.sequential_fallbacks, 0u);
    ASSERT_EQ(via_engine.neighbors.size(), direct.neighbors.size());
    for (size_t i = 0; i < direct.neighbors.size(); ++i) {
      EXPECT_EQ(via_engine.neighbors[i].id, direct.neighbors[i].id);
    }
  }
  EXPECT_EQ(engine.fallback_queries(), 0u);
  std::remove(path.c_str());
}

TEST(DurabilityTest, MissingOrMismatchedIndexDoesNotQuarantine) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 42, 100);
  SignatureTable table = MakeTable(db);
  const std::string path = TempPath("mismatch.mbst");
  ASSERT_TRUE(SaveSignatureTable(table, path).ok());

  // Missing artifact: there is nothing to degrade around.
  SignatureTableEngine engine(&db);
  Status missing = engine.OpenIndex(TempPath("no_such_index.mbst"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine.quarantined());

  // Healthy artifact opened against the wrong database: caller error, not
  // corruption.
  TransactionDatabase other = MakeDatabase(FaultSeed() + 43, 60);
  SignatureTableEngine wrong_db(&other);
  Status mismatched = wrong_db.OpenIndex(path);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(wrong_db.quarantined());
  std::remove(path.c_str());
}

// --- Legacy v1 artifacts ------------------------------------------------
//
// Byte-for-byte replicas of the seed's unframed writers. The new loaders
// must keep reading these files (existing deployments have them on disk).

bool WriteU32(FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}
bool WriteU64(FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}
bool WriteU32Vector(FILE* file, const std::vector<uint32_t>& values) {
  if (!WriteU64(file, values.size())) return false;
  return values.empty() ||
         std::fwrite(values.data(), sizeof(uint32_t), values.size(), file) ==
             values.size();
}

void WriteLegacyDatabase(const std::string& path,
                         const TransactionDatabase& db) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(WriteU32(file, 0x4D424944u) && WriteU32(file, 1u) &&
              WriteU32(file, db.universe_size()) && WriteU64(file, db.size()));
  for (const Transaction& transaction : db.transactions()) {
    ASSERT_TRUE(WriteU32(file, static_cast<uint32_t>(transaction.size())));
    const auto& items = transaction.items();
    if (!items.empty()) {
      ASSERT_EQ(std::fwrite(items.data(), sizeof(ItemId), items.size(), file),
                items.size());
    }
  }
  ASSERT_EQ(std::fclose(file), 0);
}

void WriteLegacyPartition(const std::string& path,
                          const SignaturePartition& partition) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const uint32_t header[4] = {0x4D425350u, 1u, partition.cardinality(),
                              partition.universe_size()};
  ASSERT_EQ(std::fwrite(header, sizeof(uint32_t), 4, file), 4u);
  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  ASSERT_EQ(std::fwrite(signature_of_item.data(), sizeof(uint32_t),
                        signature_of_item.size(), file),
            signature_of_item.size());
  ASSERT_EQ(std::fclose(file), 0);
}

void WriteLegacyTable(const std::string& path, const SignatureTable& table) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const SignaturePartition& partition = table.partition();
  ASSERT_TRUE(WriteU32(file, 0x4D425354u) && WriteU32(file, 1u) &&
              WriteU32(file, partition.cardinality()) &&
              WriteU32(file, partition.universe_size()) &&
              WriteU32(file,
                       static_cast<uint32_t>(table.activation_threshold())) &&
              WriteU32(file, table.page_size_bytes()));
  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  ASSERT_TRUE(WriteU32Vector(file, signature_of_item));
  const uint64_t num_transactions = table.num_indexed_transactions();
  ASSERT_TRUE(WriteU64(file, num_transactions));
  for (TransactionId id = 0; id < num_transactions; ++id) {
    ASSERT_TRUE(WriteU32(file, table.CoordinateOfTransaction(id)));
  }
  ASSERT_TRUE(WriteU64(file, table.entries().size()));
  for (const SignatureTable::Entry& entry : table.entries()) {
    ASSERT_TRUE(WriteU32(file, entry.coordinate) &&
                WriteU32(file, entry.transaction_count) &&
                WriteU32(file, entry.bucket));
  }
  const TransactionStore& store = table.store();
  ASSERT_TRUE(WriteU64(file, store.num_buckets()));
  for (uint32_t bucket = 0; bucket < store.num_buckets(); ++bucket) {
    ASSERT_TRUE(WriteU32Vector(file, store.PagesOfBucket(bucket)));
  }
  const PageStore& pages = store.page_store();
  ASSERT_TRUE(WriteU64(file, pages.size()));
  for (const Page& page : pages.pages()) {
    ASSERT_TRUE(WriteU32(file, page.used_bytes) &&
                WriteU32Vector(file, page.transaction_ids));
  }
  std::vector<uint32_t> page_of_transaction(num_transactions);
  for (TransactionId id = 0; id < num_transactions; ++id) {
    page_of_transaction[id] = store.PageOfTransaction(id);
  }
  ASSERT_TRUE(WriteU32Vector(file, page_of_transaction));
  ASSERT_EQ(std::fclose(file), 0);
}

TEST(LegacyFormatTest, ReadsSeedEraDatabase) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 50, 90);
  const std::string path = TempPath("legacy.mbid");
  WriteLegacyDatabase(path, db);
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatabasesEqual(*loaded, db);
  std::remove(path.c_str());
}

TEST(LegacyFormatTest, ReadsSeedEraPartition) {
  SignaturePartition partition(4, {0, 1, 2, 3, 3, 2, 1, 0, 2});
  const std::string path = TempPath("legacy.mbsp");
  WriteLegacyPartition(path, partition);
  auto loaded = LoadPartition(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->cardinality(), partition.cardinality());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    EXPECT_EQ(loaded->SignatureOf(item), partition.SignatureOf(item));
  }
  std::remove(path.c_str());
}

TEST(LegacyFormatTest, ReadsSeedEraTableAndAnswersIdentically) {
  const uint64_t seed = FaultSeed();
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed + 51;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(300);
  SignatureTable table = MakeTable(db);
  const std::string path = TempPath("legacy.mbst");
  WriteLegacyTable(path, table);

  auto loaded = LoadSignatureTable(path, db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BranchAndBoundEngine original(&db, &table);
  BranchAndBoundEngine reopened(&db, &*loaded);
  MatchRatioFamily family;
  for (int q = 0; q < 5; ++q) {
    Transaction target = generator.NextTransaction();
    auto a = original.FindKNearest(target, family, 5);
    auto b = reopened.FindKNearest(target, family, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
  }
  std::remove(path.c_str());
}

// --- mbi verify's engine ------------------------------------------------

TEST(ArtifactVerifyTest, ReportsHealthyV2Artifacts) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 60, 80);
  SignatureTable table = MakeTable(db);
  const std::string db_path = TempPath("verify.mbid");
  const std::string table_path = TempPath("verify.mbst");
  ASSERT_TRUE(SaveDatabase(db, db_path).ok());
  ASSERT_TRUE(SaveSignatureTable(table, table_path).ok());

  auto db_report = VerifyArtifact(db_path);
  ASSERT_TRUE(db_report.ok()) << db_report.status().ToString();
  EXPECT_TRUE(db_report->Overall().ok()) << db_report->Overall().ToString();
  EXPECT_EQ(db_report->type_name, "database");
  ASSERT_EQ(db_report->sections.size(), 2u);
  EXPECT_EQ(db_report->sections[0].name, "meta");
  EXPECT_EQ(db_report->sections[1].name, "transactions");

  auto table_report = VerifyArtifact(table_path);
  ASSERT_TRUE(table_report.ok());
  EXPECT_TRUE(table_report->Overall().ok());
  EXPECT_EQ(table_report->type_name, "signature table");
  EXPECT_EQ(table_report->sections.size(), 7u);

  std::remove(db_path.c_str());
  std::remove(table_path.c_str());
}

TEST(ArtifactVerifyTest, NamesTheCorruptSection) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 61, 80);
  const std::string path = TempPath("verify_bad.mbid");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  FlipByteInFile(path, ReadAllBytes(path).size() - 5, 0x01);

  auto report = VerifyArtifact(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->Overall().ok());
  EXPECT_NE(report->Overall().message().find("transactions"),
            std::string::npos)
      << report->Overall().ToString();
  ASSERT_EQ(report->sections.size(), 2u);
  EXPECT_TRUE(report->sections[0].crc_ok);
  EXPECT_FALSE(report->sections[1].crc_ok);

  // Checksums-only mode finds the same damage without the deep parse.
  auto shallow = VerifyArtifact(path, /*checksums_only=*/true);
  ASSERT_TRUE(shallow.ok());
  EXPECT_FALSE(shallow->Overall().ok());
  std::remove(path.c_str());
}

TEST(ArtifactVerifyTest, LegacyArtifactsGetStructuralParseOnly) {
  TransactionDatabase db = MakeDatabase(FaultSeed() + 62, 40);
  const std::string path = TempPath("verify_legacy.mbid");
  WriteLegacyDatabase(path, db);
  auto report = VerifyArtifact(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->version, 1u);
  EXPECT_TRUE(report->sections.empty());
  EXPECT_TRUE(report->Overall().ok());
  std::remove(path.c_str());
}

TEST(ArtifactVerifyTest, RejectsUnknownFiles) {
  const std::string path = TempPath("verify_junk.bin");
  WriteAllBytes(path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd'});
  auto report = VerifyArtifact(path);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCorruption);

  auto missing = VerifyArtifact(TempPath("verify_missing.bin"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbi
