#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_stats.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/fault_injector.h"
#include "storage/page_store.h"
#include "txn/database.h"

namespace mbi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- registry basics ----------------------------------------------------

TEST(MetricsRegistryTest, CounterRoundTrip) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mbi.test.events", "events", "help");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  // Re-registration interns: same handle, value preserved.
  EXPECT_EQ(registry.GetCounter("mbi.test.events", "events", "other help"),
            counter);
  EXPECT_EQ(registry.FindCounter("mbi.test.events"), counter);
  EXPECT_EQ(registry.FindCounter("mbi.test.absent"), nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("mbi.test.level", "ratio", "help");
  gauge->Set(0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.5);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.75);
}

TEST(MetricsRegistryTest, SchemaViolationsAbort) {
  MetricsRegistry registry;
  registry.GetCounter("mbi.test.events", "events", "help");
  EXPECT_DEATH(registry.GetCounter("mbi.test.events", "queries", "help"),
               "unit");
  EXPECT_DEATH(registry.GetGauge("mbi.test.events", "events", "help"),
               "different kind");
  EXPECT_DEATH(registry.GetCounter("Bad.Name", "x", "help"), "invalid");
  EXPECT_DEATH(registry.GetCounter("trailing.", "x", "help"), "invalid");
  EXPECT_DEATH(registry.GetCounter("double..dot", "x", "help"), "invalid");
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mbi.test.c", "events", "");
  Gauge* gauge = registry.GetGauge("mbi.test.g", "ratio", "");
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  counter->Increment(7);
  gauge->Set(3.0);
  histogram->Record(12.0);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_DOUBLE_EQ(histogram->GetSnapshot().sum, 0.0);
  counter->Increment();  // Handles stay live after Reset.
  EXPECT_EQ(counter->value(), 1u);
}

// --- latency histogram --------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  MetricsRegistry registry;
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  // Samples <= 1 land in the first bucket; (2^(i-1), 2^i] lands in bucket i.
  histogram->Record(0.0);
  histogram->Record(1.0);
  histogram->Record(1.5);
  histogram->Record(2.0);
  histogram->Record(2.1);
  histogram->Record(1e9);  // Past 2^26: overflow bucket.
  const LatencyHistogram::Snapshot snapshot = histogram->GetSnapshot();
  EXPECT_EQ(snapshot.count, 6u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_EQ(snapshot.buckets[1], 2u);
  EXPECT_EQ(snapshot.buckets[2], 1u);
  EXPECT_EQ(snapshot.buckets[LatencyHistogram::kFiniteBuckets], 1u);
  EXPECT_DOUBLE_EQ(snapshot.max, 1e9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::Snapshot::BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(LatencyHistogram::Snapshot::BucketUpperBound(
      LatencyHistogram::kFiniteBuckets)));
}

TEST(LatencyHistogramTest, NegativeAndNanSamplesAreClamped) {
  MetricsRegistry registry;
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  histogram->Record(-5.0);
  histogram->Record(std::nan(""));
  const LatencyHistogram::Snapshot snapshot = histogram->GetSnapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
}

TEST(LatencyHistogramTest, QuantileWalksBuckets) {
  MetricsRegistry registry;
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  for (int i = 0; i < 90; ++i) histogram->Record(3.0);   // le 4.
  for (int i = 0; i < 10; ++i) histogram->Record(100.0);  // le 128.
  const LatencyHistogram::Snapshot snapshot = histogram->GetSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.9), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.95), 128.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 128.0);
  LatencyHistogram* empty = registry.GetHistogram("mbi.test.e", "us", "");
  EXPECT_DOUBLE_EQ(empty->GetSnapshot().Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mbi.test.c", "events", "");
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const LatencyHistogram::Snapshot snapshot = histogram->GetSnapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucketed = 0;
  for (uint64_t bucket : snapshot.buckets) bucketed += bucket;
  EXPECT_EQ(bucketed, snapshot.count);
  EXPECT_DOUBLE_EQ(snapshot.max, 8.0);
}

// --- JSON export --------------------------------------------------------

TEST(MetricsJsonTest, ExportIsStableAndTagged) {
  MetricsRegistry registry;
  registry.GetCounter("mbi.test.b", "events", "")->Increment(2);
  registry.GetCounter("mbi.test.a", "events", "")->Increment(1);
  registry.GetGauge("mbi.test.g", "bool", "")->Set(1.0);
  registry.GetHistogram("mbi.test.h", "us", "")->Record(3.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"schema\": \"mbi.metrics.v1\""), std::string::npos);
  // Sorted name order inside each section.
  EXPECT_LT(json.find("mbi.test.a"), json.find("mbi.test.b"));
  EXPECT_NE(json.find("\"mbi.test.a\": {\"unit\": \"events\", \"value\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+inf\""), std::string::npos);
  // Two identical exports are byte-identical (stability contract).
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsJsonTest, EmptyRegistryStillEmitsSections) {
  MetricsRegistry registry;
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

// --- tracing ------------------------------------------------------------

TEST(QueryTraceTest, ScopedTimerRecordsSpansInOrder) {
  QueryTrace trace;
  {
    ScopedTimer span(nullptr, &trace, "phase_one");
  }
  {
    ScopedTimer span(nullptr, &trace, "phase_two");
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "phase_one");
  EXPECT_EQ(trace.spans()[1].name, "phase_two");
  EXPECT_GE(trace.spans()[0].duration_us, 0.0);
  EXPECT_LE(trace.spans()[0].start_us, trace.spans()[1].start_us);
  EXPECT_NE(trace.ToString().find("span=phase_one"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(QueryTraceTest, TimerFeedsHistogramAndTraceTogether) {
  MetricsRegistry registry;
  LatencyHistogram* histogram = registry.GetHistogram("mbi.test.h", "us", "");
  QueryTrace trace;
  {
    ScopedTimer span(histogram, &trace, "work");
    EXPECT_GE(span.ElapsedUs(), 0.0);
  }
  EXPECT_EQ(histogram->count(), 1u);
  ASSERT_EQ(trace.spans().size(), 1u);
}

// --- QueryStats clamping (regression) -----------------------------------

TEST(QueryStatsTest, PruningEfficiencyIsClampedToValidRange) {
  QueryStats stats;
  stats.database_size = 100;
  stats.transactions_evaluated = 25;
  EXPECT_DOUBLE_EQ(stats.AccessedFraction(), 0.25);
  EXPECT_DOUBLE_EQ(stats.PruningEfficiencyPercent(), 75.0);

  // Re-evaluation (multi-entry indexing, fallback rescans) can push
  // evaluations past the database size; that must clamp, never go negative.
  stats.transactions_evaluated = 180;
  EXPECT_DOUBLE_EQ(stats.AccessedFraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats.PruningEfficiencyPercent(), 0.0);

  stats.database_size = 0;
  EXPECT_DOUBLE_EQ(stats.AccessedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.PruningEfficiencyPercent(), 100.0);
}

// --- storage-layer instrumentation --------------------------------------

TEST(StorageMetricsTest, PageStoreCountsReadsAndOpenedPages) {
  MetricsRegistry registry;
  PageStore store(64);
  store.set_metrics(&registry);
  // 3 appends of 30 bytes: two pages opened (30+30 fits, the third spills).
  store.Append(0, 30);
  store.Append(1, 30);
  store.Append(2, 30);
  store.AppendToFreshPage(3, 30);
  EXPECT_EQ(registry.FindCounter("mbi.pagestore.pages_written")->value(), 3u);
  IoStats stats;
  store.Read(0, &stats);
  store.Read(1, nullptr);  // Metric counts even without a ledger.
  EXPECT_EQ(registry.FindCounter("mbi.pagestore.pages_read")->value(), 2u);
  EXPECT_EQ(stats.pages_read, 1u);
}

TEST(StorageMetricsTest, BufferPoolCountsHitsAndMisses) {
  MetricsRegistry registry;
  PageStore store(64);
  store.Append(0, 40);
  store.AppendToFreshPage(1, 40);
  BufferPool pool(&store, 2);
  pool.set_metrics(&registry);
  IoStats stats;
  pool.Read(0, &stats);  // miss
  pool.Read(0, &stats);  // hit
  pool.Read(1, &stats);  // miss
  pool.Read(1, &stats);  // hit
  EXPECT_EQ(registry.FindCounter("mbi.bufferpool.hit")->value(), 2u);
  EXPECT_EQ(registry.FindCounter("mbi.bufferpool.miss")->value(), 2u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(StorageMetricsTest, EnvCountsTransientFaultsRetriesAndBackoff) {
  MetricsRegistry registry;
  Env env(/*jitter_seed=*/7);
  FaultInjector injector(7);
  injector.TransientWrites(0, 2);  // First write: 2 rejections, then OK.
  env.set_fault_injector(&injector);
  RetryOptions options;
  options.sleep_ms = [](double) {};  // Run the schedule without sleeping.
  env.set_retry_options(options);
  env.set_metrics(&registry);

  auto file = env.NewWritableFile(TempPath("metrics_env.bin"));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello", 5).ok());
  ASSERT_TRUE((*file)->Close().ok());

  EXPECT_EQ(registry.FindCounter("mbi.env.fault.injected")->value(), 2u);
  EXPECT_EQ(registry.FindCounter("mbi.env.write.retries")->value(), 2u);
  EXPECT_GT(registry.FindCounter("mbi.env.write.backoff")->value(), 0u);
}

// --- engine-level aggregation -------------------------------------------

struct EngineFixture {
  TransactionDatabase db;
  std::vector<Transaction> queries;
  SignatureTable table;

  EngineFixture() : db(1), table([this] {
    QuestGeneratorConfig config;
    config.universe_size = 200;
    config.num_large_itemsets = 50;
    config.seed = 4242;
    QuestGenerator generator(config);
    db = generator.GenerateDatabase(1500);
    queries = generator.GenerateQueries(8);
    IndexBuildConfig build;
    build.clustering.target_cardinality = 8;
    return BuildIndex(db, build);
  }()) {}
};

/// The acceptance property of the metrics layer: aggregate counters must
/// reconcile exactly with the per-query QueryStats the engine returns.
TEST(EngineMetricsTest, CountersReconcileWithQueryStats) {
  EngineFixture fixture;
  SignatureTableEngine engine(&fixture.db);
  engine.AdoptTable(fixture.table);
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;

  QueryStats sum;
  for (const Transaction& target : fixture.queries) {
    NearestNeighborResult result = engine.FindKNearest(target, family, 5);
    sum.entries_total += result.stats.entries_total;
    sum.entries_scanned += result.stats.entries_scanned;
    sum.entries_pruned += result.stats.entries_pruned;
    sum.entries_unexplored += result.stats.entries_unexplored;
    sum.transactions_evaluated += result.stats.transactions_evaluated;
    sum.io.pages_read += result.stats.io.pages_read;
    sum.io.pages_cached += result.stats.io.pages_cached;
    sum.io.bytes_read += result.stats.io.bytes_read;
    sum.io.transactions_fetched += result.stats.io.transactions_fetched;
  }
  RangeQueryResult range = engine.FindInRange(fixture.queries[0], family, 0.4);

  const auto counter = [&](const char* name) {
    const Counter* found = registry.FindCounter(name);
    EXPECT_NE(found, nullptr) << name;
    return found == nullptr ? 0 : found->value();
  };
  EXPECT_EQ(counter("mbi.engine.query.knn"), fixture.queries.size());
  EXPECT_EQ(counter("mbi.engine.query.range"), 1u);
  EXPECT_EQ(counter("mbi.engine.query.fallback"), 0u);
  EXPECT_EQ(counter("mbi.engine.entries.considered"),
            sum.entries_total + range.stats.entries_total);
  EXPECT_EQ(counter("mbi.engine.entries.scanned"),
            sum.entries_scanned + range.stats.entries_scanned);
  EXPECT_EQ(counter("mbi.engine.entries.pruned"),
            sum.entries_pruned + range.stats.entries_pruned);
  EXPECT_EQ(counter("mbi.engine.entries.unexplored"),
            sum.entries_unexplored + range.stats.entries_unexplored);
  EXPECT_EQ(counter("mbi.engine.transactions.evaluated"),
            sum.transactions_evaluated + range.stats.transactions_evaluated);
  EXPECT_EQ(counter("mbi.engine.io.pages_read"),
            sum.io.pages_read + range.stats.io.pages_read);
  EXPECT_EQ(counter("mbi.engine.io.bytes_read"),
            sum.io.bytes_read + range.stats.io.bytes_read);
  EXPECT_EQ(counter("mbi.engine.io.transactions_fetched"),
            sum.io.transactions_fetched + range.stats.io.transactions_fetched);
  EXPECT_EQ(registry.FindHistogram("mbi.engine.latency.knn")->count(),
            fixture.queries.size());
  EXPECT_EQ(registry.FindHistogram("mbi.engine.latency.range")->count(), 1u);
  EXPECT_DOUBLE_EQ(registry.FindGauge("mbi.engine.quarantined")->value(), 0.0);
  // Query traffic went through the instrumented page store too.
  EXPECT_EQ(registry.FindCounter("mbi.pagestore.pages_read")->value(),
            sum.io.pages_read + range.stats.io.pages_read);
}

/// Satellite regression: the sequential fallback used to drop the scanner's
/// I/O for range queries (SequentialInRange never passed an IoStats sink),
/// so quarantined range queries reported a physically free scan.
TEST(EngineMetricsTest, FallbackRangeQueryReportsScanIo) {
  EngineFixture fixture;
  SignatureTableEngine engine(&fixture.db);  // No table: every query falls
                                             // back, as in quarantine.
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;

  RangeQueryResult range = engine.FindInRange(fixture.queries[0], family, 0.5);
  EXPECT_EQ(range.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(range.stats.io.transactions_fetched, fixture.db.size());
  EXPECT_GT(range.stats.io.pages_read, 0u);
  EXPECT_GT(range.stats.io.bytes_read, 0u);
  // Same contract as the k-NN fallback, whose I/O was always charged.
  NearestNeighborResult knn = engine.FindKNearest(fixture.queries[0], family, 3);
  EXPECT_EQ(knn.stats.io.transactions_fetched, fixture.db.size());
  EXPECT_EQ(range.stats.io.pages_read, knn.stats.io.pages_read);

  // And the aggregate layer sees both the fallbacks and the scan I/O.
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.fallback")->value(), 2u);
  EXPECT_EQ(registry.FindCounter("mbi.scan.query.range")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("mbi.scan.query.knn")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("mbi.scan.transactions.scanned")->value(),
            2 * fixture.db.size());
  EXPECT_EQ(registry.FindCounter("mbi.engine.io.transactions_fetched")->value(),
            2 * fixture.db.size());
  // The clamp keeps fallback accounting in range even though the scan
  // re-evaluated everything.
  EXPECT_DOUBLE_EQ(range.stats.PruningEfficiencyPercent(), 0.0);
  EXPECT_DOUBLE_EQ(range.stats.AccessedFraction(), 1.0);
}

/// Satellite: the engine-level batch helper against a degraded engine must
/// aggregate fallbacks (the core batch helper only ever ran healthy).
TEST(EngineMetricsTest, BatchFallbackAggregatesAcrossTargets) {
  EngineFixture fixture;
  SignatureTableEngine engine(&fixture.db);  // Degraded: no table adopted.
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;

  std::vector<NearestNeighborResult> results =
      engine.FindKNearestBatch(fixture.queries, family, 5);
  ASSERT_EQ(results.size(), fixture.queries.size());
  for (const NearestNeighborResult& result : results) {
    EXPECT_EQ(result.stats.sequential_fallbacks, 1u);
    EXPECT_TRUE(result.guaranteed_exact);
  }
  EXPECT_EQ(engine.fallback_queries(), fixture.queries.size());
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.fallback")->value(),
            fixture.queries.size());
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.knn")->value(),
            fixture.queries.size());

  // Degraded batch answers are the sequential oracle's answers.
  SequentialScanner scanner(&fixture.db);
  for (size_t i = 0; i < fixture.queries.size(); ++i) {
    std::vector<Neighbor> oracle =
        scanner.FindKNearest(fixture.queries[i], family, 5);
    ASSERT_EQ(results[i].neighbors.size(), oracle.size());
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_EQ(results[i].neighbors[j].id, oracle[j].id);
      EXPECT_DOUBLE_EQ(results[i].neighbors[j].similarity,
                       oracle[j].similarity);
    }
  }
}

TEST(EngineMetricsTest, HealthyBatchMatchesSingleQueriesAndAggregates) {
  EngineFixture fixture;
  SignatureTableEngine engine(&fixture.db);
  engine.AdoptTable(fixture.table);
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;

  std::vector<NearestNeighborResult> batch =
      engine.FindKNearestBatch(fixture.queries, family, 5, {}, 2);
  ASSERT_EQ(batch.size(), fixture.queries.size());
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.knn")->value(),
            fixture.queries.size());
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.fallback")->value(), 0u);
  EXPECT_EQ(engine.fallback_queries(), 0u);

  uint64_t evaluated = 0;
  for (size_t i = 0; i < fixture.queries.size(); ++i) {
    EXPECT_EQ(batch[i].stats.sequential_fallbacks, 0u);
    evaluated += batch[i].stats.transactions_evaluated;
    NearestNeighborResult single =
        engine.FindKNearest(fixture.queries[i], family, 5);
    ASSERT_EQ(batch[i].neighbors.size(), single.neighbors.size());
    for (size_t j = 0; j < single.neighbors.size(); ++j) {
      EXPECT_EQ(batch[i].neighbors[j].id, single.neighbors[j].id);
    }
  }
  // The batch recorded counters but not latency (no per-query wall time).
  EXPECT_EQ(registry.FindHistogram("mbi.engine.latency.knn")->count(),
            fixture.queries.size());  // Only the singles above.
  EXPECT_GE(registry.FindCounter("mbi.engine.transactions.evaluated")->value(),
            evaluated);
}

TEST(EngineMetricsTest, DisablingMetricsStopsRecording) {
  EngineFixture fixture;
  SignatureTableEngine engine(&fixture.db);
  engine.AdoptTable(fixture.table);
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;
  engine.FindKNearest(fixture.queries[0], family, 3);
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.knn")->value(), 1u);
  engine.set_metrics(nullptr);
  engine.FindKNearest(fixture.queries[0], family, 3);
  EXPECT_EQ(registry.FindCounter("mbi.engine.query.knn")->value(), 1u);
}

}  // namespace
}  // namespace mbi
