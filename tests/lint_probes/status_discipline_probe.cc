// Negative probe: mbi-lint rule `status-discipline` must fire on this file.
// Not compiled; linter input only (see README.md).
//
// The probe drops the result of a Status-returning call in statement
// position. RenameFile is harvested from the real src/storage/env.h
// declaration, so this also proves the harvest step sees the headers.

namespace probe {

class Env;
Env* TestEnv();

void CommitWithoutChecking(Env* env) {
  (void)env;
  TestEnv()->RenameFile("a.tmp", "a");  // violation: dropped Status
}

}  // namespace probe
