// Positive probe: every violation below carries a `// mbi-lint: allow(...)`
// escape hatch, so mbi-lint must report ZERO findings for this file. If the
// suppression mechanism breaks, --self-test fails here.
// Not compiled; linter input only (see README.md).

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#define MBI_HOT

namespace probe {

// Comment-above form: the allow() on its own line covers the next line.
// mbi-lint: allow(no-raw-mutex)
std::mutex g_probe_mu;

void Suppressed() {
  std::thread t([] {});  // mbi-lint: allow(no-raw-thread)
  t.join();
  std::FILE* f = std::fopen("/dev/null", "r");  // mbi-lint: allow(no-raw-io)
  if (f != nullptr) std::fclose(f);  // mbi-lint: allow(no-raw-io)
  int* leak = new int(1);  // mbi-lint: allow(no-naked-new)
  delete leak;             // mbi-lint: allow(no-naked-new)
}

MBI_HOT int HotSuppressed(int x) {
  // Multi-rule form: one comment, several rules.
  std::vector<int> v;  // mbi-lint: allow(no-unbounded-container-in-hot, no-naked-new)
  v.push_back(x);
  auto p = std::make_unique<int>(x);  // mbi-lint: allow(no-alloc-in-hot)
  return v.back() + *p;
}

class Env;
Env* TestEnv();

void DropSuppressed() {
  TestEnv()->RenameFile("a", "b");  // mbi-lint: allow(status-discipline)
}

}  // namespace probe
