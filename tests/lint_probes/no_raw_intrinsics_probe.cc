// Negative probe for the no-raw-intrinsics rule: a file outside src/kernel/
// that includes an intrinsic header and uses x86 vector intrinsics directly.
// mbi_lint.py --self-test requires the rule to fire on every line below;
// if it stops firing, the ISA-confinement analysis has gone dead.
//
// (Never compiled — the probe corpus is input for the linter only.)

#include <immintrin.h>

int SumOfZeroVector() {
  __m256i zero = _mm256_setzero_si256();
  __m256i sum = _mm256_add_epi64(zero, zero);
  return _mm256_extract_epi32(sum, 0);
}
