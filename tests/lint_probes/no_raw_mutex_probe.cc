// Negative probe: mbi-lint rule `no-raw-mutex` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <mutex>

namespace probe {

struct Counter {
  std::mutex mu;  // violation: raw std::mutex outside util/mutex.h
  int value = 0;

  void Bump() {
    std::lock_guard<std::mutex> lock(mu);  // violation: raw lock_guard
    ++value;
  }
};

}  // namespace probe
