// Negative probe: mbi-lint rule `no-alloc-in-hot` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <memory>
#include <string>

#define MBI_HOT

namespace probe {

struct Scratch {
  int value = 0;
};

MBI_HOT int EvaluateOnce(int x) {
  auto owned = std::make_unique<Scratch>();       // violation
  int* raw = new int(x);                          // violation
  delete raw;                                     // violation
  std::string s = std::to_string(x);              // violation (to_string)
  return owned->value + static_cast<int>(s.size());
}

// This must NOT fire: cold code may allocate freely.
int ColdSetup() {
  auto owned = std::make_unique<Scratch>();
  return owned->value;
}

}  // namespace probe
