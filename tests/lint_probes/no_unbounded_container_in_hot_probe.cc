// Negative probe: mbi-lint rule `no-unbounded-container-in-hot` must fire.
// Not compiled; linter input only (see README.md).

#include <string>
#include <vector>

#define MBI_HOT

namespace probe {

MBI_HOT double ScoreAll(const std::vector<int>& input) {
  std::vector<double> scores;  // violation: local owning container in hot code
  for (int v : input) scores.push_back(v * 0.5);
  std::string label = "hot";  // violation
  return scores.empty() ? 0.0 : scores.back() + label.size();
}

// This must NOT fire: references and pointers do not own, and cold code is
// out of scope for the rule.
double ColdPath() {
  std::vector<double> fine;
  return fine.size();
}

MBI_HOT double UsesCallerBuffer(std::vector<double>& scratch) {
  const std::vector<double>& view = scratch;  // reference binding: fine
  return view.size();
}

}  // namespace probe
