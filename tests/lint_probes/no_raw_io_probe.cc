// Negative probe: mbi-lint rule `no-raw-io` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <cstdio>
#include <fstream>

namespace probe {

bool DumpBytes(const char* path) {
  std::FILE* f = std::fopen(path, "wb");  // violation: fopen off the Env seam
  if (f == nullptr) return false;
  std::fwrite("x", 1, 1, f);  // violation
  std::fclose(f);            // violation
  std::ofstream out(path);   // violation: ofstream bypasses Env
  return out.good();
}

}  // namespace probe
