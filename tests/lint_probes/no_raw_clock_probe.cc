// Negative probe: mbi-lint rule `no-raw-clock` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <chrono>

namespace probe {

inline double NowMs() {
  // violation: raw steady_clock read outside util/deadline_clock.{h,cc}
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace probe
