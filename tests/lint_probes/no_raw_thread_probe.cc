// Negative probe: mbi-lint rule `no-raw-thread` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <thread>

namespace probe {

void SpawnDetached() {
  std::thread worker([] {});  // violation: raw std::thread outside ThreadPool
  worker.detach();
}

// This must NOT fire: a static query, not a spawn.
unsigned Cores() { return std::thread::hardware_concurrency(); }

}  // namespace probe
