// Negative probe: mbi-lint rule `no-naked-new` must fire on this file.
// Not compiled; linter input only (see README.md).

#include <cstdlib>

namespace probe {

struct Node {
  int value = 0;
};

Node* Leak() {
  int* raw = static_cast<int*>(std::malloc(sizeof(int)));  // violation
  std::free(raw);                                          // violation
  Node* node = new Node();                                 // violation
  delete node;                                             // violation
  return new Node();                                       // violation
}

// This must NOT fire: deleted functions are declarations, not deallocations.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};

}  // namespace probe
