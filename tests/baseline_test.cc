#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/inverted_index.h"
#include "baseline/sequential_scan.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(double avg_transaction_size = 8.0) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = avg_transaction_size;
  config.seed = 67;
  return config;
}

// --- SequentialScanner ---

TEST(SequentialScannerTest, FindsTrueNearestByBruteForceCrossCheck) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(300);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;
  Transaction target = generator.NextTransaction();
  auto function = family.ForTarget(target);

  auto result = scanner.FindKNearest(target, family, 1);
  ASSERT_EQ(result.size(), 1u);
  for (TransactionId id = 0; id < db.size(); ++id) {
    size_t x = 0, y = 0;
    MatchAndHamming(target, db.Get(id), &x, &y);
    EXPECT_LE(function->Evaluate(static_cast<int>(x), static_cast<int>(y)),
              result[0].similarity);
  }
}

TEST(SequentialScannerTest, ChargesStreamingIo) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(500);
  SequentialScanner scanner(&db);
  InverseHammingFamily family;
  IoStats stats;
  scanner.FindKNearest(generator.NextTransaction(), family, 1, &stats, 4096);
  EXPECT_EQ(stats.transactions_fetched, 500u);
  // A 4 KiB page holds dozens of small baskets: far fewer pages than rows.
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_LT(stats.pages_read, 100u);
}

// --- InvertedIndex ---

TEST(InvertedIndexTest, PostingsAreExact) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(400);
  InvertedIndex index(&db);
  for (ItemId item = 0; item < db.universe_size(); ++item) {
    const auto& postings = index.PostingsOf(item);
    EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
    std::set<TransactionId> expected;
    for (TransactionId id = 0; id < db.size(); ++id) {
      if (db.Get(id).Contains(item)) expected.insert(id);
    }
    EXPECT_EQ(postings.size(), expected.size());
    for (TransactionId id : postings) EXPECT_TRUE(expected.count(id));
  }
  index.CheckInvariants();
}

TEST(InvertedIndexTest, CandidatesAreUnionOfPostings) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(400);
  InvertedIndex index(&db);
  Transaction target = generator.NextTransaction();
  auto candidates = index.Candidates(target);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  std::set<TransactionId> expected;
  for (ItemId item : target.items()) {
    for (TransactionId id : index.PostingsOf(item)) expected.insert(id);
  }
  EXPECT_EQ(candidates.size(), expected.size());
  // Every candidate shares at least one item with the target.
  for (TransactionId id : candidates) {
    EXPECT_GT(MatchCount(target, db.Get(id)), 0u);
  }
}

TEST(InvertedIndexTest, AgreesWithScanForMatchMonotoneFunctions) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(600);
  InvertedIndex index(&db);
  SequentialScanner scanner(&db);
  // Cosine and match-ratio vanish at x = 0, so the two-phase answer is
  // complete whenever any candidate exists.
  for (const char* name : {"cosine", "match_ratio"}) {
    auto family = MakeSimilarityFamily(name);
    for (int q = 0; q < 8; ++q) {
      Transaction target = generator.NextTransaction();
      auto result = index.FindKNearest(target, *family, 3);
      auto oracle = scanner.FindKNearest(target, *family, 3);
      if (!result.candidates_complete) continue;
      ASSERT_GE(result.neighbors.size(), 1u);
      // Oracle's best may be a zero-similarity transaction when fewer than k
      // candidates exist; compare only the overlapping prefix with nonzero
      // similarity.
      size_t n = std::min(result.neighbors.size(), oracle.size());
      for (size_t i = 0; i < n; ++i) {
        if (oracle[i].similarity == 0.0) break;
        EXPECT_DOUBLE_EQ(result.neighbors[i].similarity,
                         oracle[i].similarity)
            << name << " query " << q << " rank " << i;
      }
    }
  }
}

TEST(InvertedIndexTest, FlagsIncompletenessForInverseHamming) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(200);
  InvertedIndex index(&db);
  InverseHammingFamily family;
  auto result = index.FindKNearest(generator.NextTransaction(), family, 1);
  EXPECT_FALSE(result.candidates_complete);
}

TEST(InvertedIndexTest, AccessFractionGrowsWithTransactionSize) {
  // Table 1's driving effect: denser transactions touch more posting lists,
  // so the candidate set covers a larger share of the database.
  double small = 0.0, large = 0.0;
  for (auto [avg_size, out] :
       {std::pair<double, double*>{5.0, &small}, {15.0, &large}}) {
    QuestGenerator generator(GeneratorConfig(avg_size));
    TransactionDatabase db = generator.GenerateDatabase(1500);
    InvertedIndex index(&db);
    MatchRatioFamily family;
    double total = 0.0;
    for (int q = 0; q < 10; ++q) {
      total += index.FindKNearest(generator.NextTransaction(), family, 1)
                   .accessed_fraction;
    }
    *out = total / 10;
  }
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.1);  // Dense baskets touch a lot of the database.
}

TEST(InvertedIndexTest, PageScatteringTouchesManyPages) {
  QuestGenerator generator(GeneratorConfig(10.0));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  InvertedIndex index(&db, /*page_size_bytes=*/4096);
  MatchRatioFamily family;
  auto result = index.FindKNearest(generator.NextTransaction(), family, 1);
  ASSERT_GT(result.pages_total, 0u);
  // Candidates are spread across the sequential layout: the fraction of
  // *pages* touched must exceed the fraction of *transactions* accessed
  // (the paper's page-scattering argument).
  double page_fraction = static_cast<double>(result.pages_touched) /
                         static_cast<double>(result.pages_total);
  EXPECT_GT(page_fraction, result.accessed_fraction);
}

TEST(InvertedIndexTest, BufferPoolReducesPhysicalReads) {
  QuestGenerator generator(GeneratorConfig(10.0));
  TransactionDatabase db = generator.GenerateDatabase(1000);
  Transaction target = generator.NextTransaction();
  MatchRatioFamily family;

  InvertedIndex cold(&db, 4096, /*buffer_pool_pages=*/0);
  InvertedIndex warm(&db, 4096, /*buffer_pool_pages=*/1024);
  auto cold_result = cold.FindKNearest(target, family, 1);
  auto warm_result = warm.FindKNearest(target, family, 1);
  EXPECT_EQ(cold_result.candidates, warm_result.candidates);
  EXPECT_LT(warm_result.io.pages_read, cold_result.io.pages_read);
  EXPECT_EQ(warm_result.io.pages_read + warm_result.io.pages_cached,
            cold_result.io.pages_read);
}

TEST(InvertedIndexTest, PostingsBytesAccounting) {
  TransactionDatabase db(10);
  db.Add(Transaction({0, 1}));
  db.Add(Transaction({1}));
  InvertedIndex index(&db);
  EXPECT_EQ(index.PostingsBytes(), 3 * sizeof(TransactionId));
}

}  // namespace
}  // namespace mbi
