#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/bounds.h"
#include "core/signature_partition.h"
#include "core/supercoordinate.h"

namespace mbi {
namespace {

/// Exhaustive verification of the paper's §4.1 bound formulas on a small
/// universe: enumerating *every* possible transaction T ⊆ U, grouping them
/// by supercoordinate, the formulas must be
///
///  * admissible — M_opt >= matches and D_opt <= hamming for every member
///    of the coordinate's feasible set, and
///  * individually tight — some member attains the match bound and some
///    member attains the distance bound (they need not be the same member).
///
/// Tightness matters: it shows the bounds are the strongest possible given
/// only the activation bits, i.e. the index extracts all the information the
/// supercoordinate carries.

class BoundTightnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundTightnessTest, BoundsAreAdmissibleAndIndividuallyTight) {
  auto [activation_threshold, target_index] = GetParam();

  // Universe of 9 items in 3 signatures of 3.
  constexpr uint32_t kUniverse = 9;
  SignaturePartition partition(3, {0, 0, 0, 1, 1, 1, 2, 2, 2});

  // A few representative targets.
  const std::vector<Transaction> targets = {
      Transaction({0, 1, 3}),          // Spread over S0, S1.
      Transaction({0, 1, 2}),          // All of S0.
      Transaction({8}),                // Single item in S2.
      Transaction({0, 3, 6}),          // One per signature.
      Transaction({0, 1, 2, 3, 4, 5, 6, 7, 8}),  // Everything.
      Transaction{},                   // Empty basket.
  };
  const Transaction& target = targets[static_cast<size_t>(target_index)];

  BoundCalculator calc(partition.CountsPerSignature(target),
                       activation_threshold);

  // Enumerate the full feasible set: all 2^9 subsets.
  struct Extremes {
    int max_match = -1;
    int min_dist = INT32_MAX;
  };
  std::map<Supercoordinate, Extremes> by_coordinate;
  for (uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
    std::vector<ItemId> items;
    for (uint32_t bit = 0; bit < kUniverse; ++bit) {
      if (mask & (1u << bit)) items.push_back(bit);
    }
    Transaction candidate(std::move(items));
    Supercoordinate coordinate =
        ComputeSupercoordinate(candidate, partition, activation_threshold);
    size_t match = 0, hamming = 0;
    MatchAndHamming(target, candidate, &match, &hamming);
    Extremes& extremes = by_coordinate[coordinate];
    extremes.max_match =
        std::max(extremes.max_match, static_cast<int>(match));
    extremes.min_dist = std::min(extremes.min_dist, static_cast<int>(hamming));
  }

  for (const auto& [coordinate, extremes] : by_coordinate) {
    OptimisticBounds bounds = calc.Compute(coordinate);
    // Admissible over the whole feasible set.
    EXPECT_GE(bounds.match_upper, extremes.max_match)
        << "coordinate " << SupercoordinateToString(coordinate, 3);
    EXPECT_LE(bounds.dist_lower, extremes.min_dist)
        << "coordinate " << SupercoordinateToString(coordinate, 3);
    // Individually tight: attained by some feasible transaction.
    EXPECT_EQ(bounds.match_upper, extremes.max_match)
        << "match bound not tight for coordinate "
        << SupercoordinateToString(coordinate, 3);
    EXPECT_EQ(bounds.dist_lower, extremes.min_dist)
        << "distance bound not tight for coordinate "
        << SupercoordinateToString(coordinate, 3);
  }

  // Sanity: at r = 1 the all-zero coordinate is exactly the empty basket;
  // at r > 1 it also holds sparse baskets.
  ASSERT_TRUE(by_coordinate.count(0));
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdsAndTargets, BoundTightnessTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

}  // namespace
}  // namespace mbi
