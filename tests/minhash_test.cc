#include "baseline/minhash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baseline/sequential_scan.h"
#include "core/similarity.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 1101) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 70;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  return config;
}

TEST(JaccardSimilarityTest, MatchesSetDefinition) {
  JaccardSimilarity jaccard;
  // |A ∩ B| = 2, |A ∪ B| = 5 -> 0.4; x = 2, y = 3.
  EXPECT_DOUBLE_EQ(jaccard.Evaluate(2, 3), 0.4);
  EXPECT_DOUBLE_EQ(jaccard.Evaluate(0, 7), 0.0);
  EXPECT_DOUBLE_EQ(jaccard.Evaluate(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(jaccard.Evaluate(0, 0), 1.0);
}

TEST(JaccardSimilarityTest, IsAdmissible) {
  JaccardSimilarity jaccard;
  EXPECT_TRUE(CheckAdmissibility(jaccard, 30, 40).admissible);
  EXPECT_EQ(MakeSimilarityFamily("jaccard")
                ->ForTarget(Transaction({1}))
                ->name(),
            "jaccard");
}

TEST(MinHashTest, SignatureCollisionRateEstimatesJaccard) {
  // The defining MinHash property: P[h_min(A) == h_min(B)] = J(A, B).
  // With 512 hashes the estimate should land within a few points.
  TransactionDatabase db(100);
  db.Add(Transaction({0}));  // Index needs a database; content irrelevant.
  MinHashConfig config;
  config.num_bands = 128;
  config.rows_per_band = 4;  // 512 hashes.
  MinHashIndex index(&db, config);

  struct Case {
    Transaction a, b;
  };
  std::vector<Case> cases = {
      {Transaction({1, 2, 3, 4}), Transaction({1, 2, 3, 4})},     // J = 1.
      {Transaction({1, 2, 3, 4}), Transaction({5, 6, 7, 8})},     // J = 0.
      {Transaction({1, 2, 3, 4}), Transaction({3, 4, 5, 6})},     // J = 1/3.
      {Transaction({1, 2, 3, 4, 5, 6}), Transaction({4, 5, 6})},  // J = 1/2.
  };
  JaccardSimilarity jaccard;
  for (const Case& test_case : cases) {
    size_t x = 0, y = 0;
    MatchAndHamming(test_case.a, test_case.b, &x, &y);
    double truth =
        jaccard.Evaluate(static_cast<int>(x), static_cast<int>(y));
    double estimate = index.EstimateJaccard(test_case.a, test_case.b);
    EXPECT_NEAR(estimate, truth, 0.08)
        << test_case.a.ToString() << " vs " << test_case.b.ToString();
  }
}

TEST(MinHashTest, CandidatesShareBandsAndRerankExactly) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(2000);
  MinHashConfig config;
  config.num_bands = 32;
  config.rows_per_band = 2;
  MinHashIndex index(&db, config);

  Transaction target = db.Get(17);  // A database row: its bucket must hit.
  auto result = index.FindKNearestJaccard(target, 3);
  ASSERT_FALSE(result.neighbors.empty());
  // The identical row is its own nearest neighbour at Jaccard 1.
  EXPECT_EQ(result.neighbors[0].similarity, 1.0);
  // Reported similarities are exact Jaccard values, best first.
  JaccardSimilarity jaccard;
  for (size_t i = 0; i < result.neighbors.size(); ++i) {
    size_t x = 0, y = 0;
    MatchAndHamming(target, db.Get(result.neighbors[i].id), &x, &y);
    EXPECT_DOUBLE_EQ(result.neighbors[i].similarity,
                     jaccard.Evaluate(static_cast<int>(x),
                                      static_cast<int>(y)));
    if (i > 0) {
      EXPECT_GE(result.neighbors[i - 1].similarity,
                result.neighbors[i].similarity);
    }
  }
}

TEST(MinHashTest, RecallIsHighForAggressiveBanding) {
  // Many bands with few rows -> high collision probability even at modest
  // Jaccard; the true NN (from an exact scan) should be found most of the
  // time, from a small candidate fraction.
  QuestGenerator generator(GeneratorConfig(1109));
  TransactionDatabase db = generator.GenerateDatabase(4000);
  MinHashConfig config;
  config.num_bands = 32;
  config.rows_per_band = 2;
  MinHashIndex index(&db, config);
  SequentialScanner scanner(&db);
  JaccardFamily family;

  int found = 0;
  double accessed = 0.0;
  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    Transaction target = generator.NextTransaction();
    auto oracle = scanner.FindKNearest(target, family, 1);
    auto result = index.FindKNearestJaccard(target, 1);
    accessed += result.accessed_fraction;
    found += !result.neighbors.empty() &&
             result.neighbors[0].similarity == oracle[0].similarity;
  }
  EXPECT_GE(found, kQueries * 6 / 10);
  EXPECT_LT(accessed / kQueries, 0.5);
}

TEST(MinHashTest, ConservativeBandingTradesRecallForCandidates) {
  // Few bands with many rows -> collisions need near-duplicates; candidate
  // sets shrink (and recall with them).
  QuestGenerator generator(GeneratorConfig(1117));
  TransactionDatabase db = generator.GenerateDatabase(3000);

  MinHashConfig aggressive;
  aggressive.num_bands = 32;
  aggressive.rows_per_band = 2;
  MinHashConfig conservative;
  conservative.num_bands = 4;
  conservative.rows_per_band = 16;
  MinHashIndex loose(&db, aggressive);
  MinHashIndex strict(&db, conservative);

  double loose_candidates = 0.0, strict_candidates = 0.0;
  for (int q = 0; q < 10; ++q) {
    Transaction target = generator.NextTransaction();
    loose_candidates += static_cast<double>(
        loose.FindKNearestJaccard(target, 1).candidates);
    strict_candidates += static_cast<double>(
        strict.FindKNearestJaccard(target, 1).candidates);
  }
  EXPECT_LT(strict_candidates, loose_candidates);
}

TEST(MinHashTest, DeterministicForSameSeed) {
  QuestGenerator generator(GeneratorConfig(1123));
  TransactionDatabase db = generator.GenerateDatabase(500);
  MinHashIndex a(&db, MinHashConfig{});
  MinHashIndex b(&db, MinHashConfig{});
  Transaction target = generator.NextTransaction();
  auto result_a = a.FindKNearestJaccard(target, 5);
  auto result_b = b.FindKNearestJaccard(target, 5);
  ASSERT_EQ(result_a.neighbors.size(), result_b.neighbors.size());
  for (size_t i = 0; i < result_a.neighbors.size(); ++i) {
    EXPECT_EQ(result_a.neighbors[i].id, result_b.neighbors[i].id);
  }
  EXPECT_GT(a.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mbi
