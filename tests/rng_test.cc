#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mbi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, CopyForksTheStream) {
  Rng a(77);
  a.NextUint64();
  Rng b = a;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, UniformUint64StaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversRangeRoughlyUniformly) {
  Rng rng(5);
  std::vector<int> histogram(8, 0);
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.UniformUint64(8)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t value = rng.UniformInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= (value == -3);
    saw_hi |= (value == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 50'000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50'000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PoissonMeanAndVariance) {
  Rng rng(19);
  constexpr int kDraws = 50'000;
  for (double mean : {2.0, 10.0, 45.0}) {
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      int value = rng.Poisson(mean);
      EXPECT_GE(value, 0);
      sum += value;
      sum_sq += static_cast<double>(value) * value;
    }
    double sample_mean = sum / kDraws;
    double sample_var = sum_sq / kDraws - sample_mean * sample_mean;
    EXPECT_NEAR(sample_mean, mean, mean * 0.05) << "mean " << mean;
    EXPECT_NEAR(sample_var, mean, mean * 0.15) << "mean " << mean;
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    double value = rng.Exponential(2.5);
    EXPECT_GE(value, 0.0);
    sum += value;
  }
  EXPECT_NEAR(sum / kDraws, 2.5, 0.1);
}

TEST(RngTest, GeometricMean) {
  Rng rng(29);
  // Failures before first success: mean (1-p)/p.
  const double p = 0.4;
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    int value = rng.Geometric(p);
    EXPECT_GE(value, 0);
    sum += value;
  }
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.05);
  EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    double value = rng.Normal(3.0, 2.0);
    sum += value;
    sum_sq += value * value;
  }
  double mean = sum / kDraws;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / kDraws - mean * mean), 2.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndSorted) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.SampleWithoutReplacement(50, 10);
    EXPECT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
    for (uint64_t value : sample) EXPECT_LT(value, 50u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace mbi
