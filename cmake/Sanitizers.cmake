# Sanitizer presets for the whole build tree.
#
# Usage:  cmake -B build -S . -DMBI_SANITIZE=address
#         cmake -B build -S . -DMBI_SANITIZE=address,undefined
#         cmake -B build -S . -DMBI_SANITIZE=thread
#
# The flags are applied with add_compile_options/add_link_options from the
# top-level CMakeLists.txt *before* any subdirectory is added, so every
# target in src/, tools/, tests/, bench/, and examples/ is instrumented —
# partial instrumentation makes ASan/TSan reports unreliable.
#
# `thread` cannot be combined with `address` (the runtimes are mutually
# exclusive); `address,undefined` is the classic CI pairing.

function(mbi_enable_sanitizers preset)
  if(preset STREQUAL "")
    return()
  endif()

  # Accept comma- or semicolon-separated combinations.
  string(REPLACE "," ";" presets "${preset}")

  set(sanitize_values "")
  foreach(name IN LISTS presets)
    if(name STREQUAL "address")
      list(APPEND sanitize_values "address")
    elseif(name STREQUAL "undefined")
      list(APPEND sanitize_values "undefined")
    elseif(name STREQUAL "thread")
      list(APPEND sanitize_values "thread")
    else()
      message(FATAL_ERROR
        "MBI_SANITIZE=${name} is not supported; use address, undefined, "
        "thread, or a comma-separated combination of address,undefined")
    endif()
  endforeach()

  if("thread" IN_LIST sanitize_values AND "address" IN_LIST sanitize_values)
    message(FATAL_ERROR
      "MBI_SANITIZE: thread and address sanitizers cannot be combined")
  endif()

  list(JOIN sanitize_values "," joined)
  message(STATUS "Sanitizers enabled: -fsanitize=${joined}")

  add_compile_options(-fsanitize=${joined} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${joined})

  if("undefined" IN_LIST sanitize_values)
    # Abort on the first UB report instead of logging and continuing, so
    # ctest fails loudly in CI.
    add_compile_options(-fno-sanitize-recover=all)
    add_link_options(-fno-sanitize-recover=all)
  endif()

  # Sanitized builds exist to find bugs: keep assertions and MBI_DCHECKs on
  # even when the cached CMAKE_BUILD_TYPE says Release.
  add_compile_options(-UNDEBUG)
endfunction()
