/// Standalone driver for the fuzz harnesses, used when the toolchain has no
/// libFuzzer (`-fsanitize=fuzzer` is Clang-only; this container image and
/// gcc CI legs build with gcc). It replays every file and directory given on
/// the command line through LLVMFuzzerTestOneInput, which turns the
/// checked-in seed corpora into deterministic regression tests: the
/// `fuzz_*_corpus` ctest entries run exactly this. Actual coverage-guided
/// exploration happens in the CI `fuzz-smoke` job, which links the same
/// harnesses against real libFuzzer under Clang.

#include <dirent.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "standalone_fuzz: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  std::fclose(file);
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  std::fprintf(stderr, "standalone_fuzz: ok %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  return true;
}

bool RunPath(const std::string& path);

bool RunDirectory(const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    std::fprintf(stderr, "standalone_fuzz: cannot list %s\n", path.c_str());
    return false;
  }
  std::vector<std::string> entries;
  for (dirent* entry = readdir(dir); entry != nullptr;
       entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    entries.push_back(path + "/" + name);
  }
  closedir(dir);
  bool ok = true;
  for (const std::string& entry : entries) ok = RunPath(entry) && ok;
  return ok;
}

bool RunPath(const std::string& path) {
  struct stat info {};
  if (stat(path.c_str(), &info) != 0) {
    std::fprintf(stderr, "standalone_fuzz: no such path %s\n", path.c_str());
    return false;
  }
  if (S_ISDIR(info.st_mode)) return RunDirectory(path);
  return RunFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-dir>...\n"
                 "(standalone replay driver; build with Clang for real "
                 "libFuzzer fuzzing)\n",
                 argv[0]);
    return 2;
  }
  // Run the empty input first — libFuzzer always does, so the harnesses
  // must hold up on it, and replaying it here keeps the two drivers aligned.
  LLVMFuzzerTestOneInput(nullptr, 0);
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = RunPath(argv[i]) && ok;
  return ok ? 0 : 1;
}
