/// Fuzz target: the MBI_FAULT_INJECT spec grammar and the injector hooks.
///
/// Part one hands arbitrary bytes to FaultInjector::FromSpec — the exact
/// string an operator can put in the environment — which must either parse
/// or return kInvalidArgument, never crash. Part two drives a parsed
/// injector through the same hook sequence an Env performs during a save
/// (open, a few writes at varied offsets/sizes, rename, reset), so the
/// schedule bookkeeping (write indices, transient decrements, bit-flip
/// ranges, torn prefixes) is exercised against adversarial schedules, and
/// every reported WriteOutcome is checked for internal consistency.
///
/// Build with -DMBI_FUZZ=ON; see fuzz/CMakeLists.txt and DESIGN.md §9.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "fuzz_input.h"
#include "storage/fault_injector.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mbi::fuzz::FuzzInput input(data, size);

  // A handful of hook-call shape decisions from the head of the input, then
  // the remainder is the spec string itself.
  const uint32_t num_writes = input.TakeInRange(0, 12);
  const uint32_t write_size = input.TakeInRange(0, 64);
  const bool do_reset = input.TakeByte() % 2 == 1;
  const std::string spec = input.TakeRemainder();

  mbi::StatusOr<std::unique_ptr<mbi::FaultInjector>> parsed =
      mbi::FaultInjector::FromSpec(spec);
  if (!parsed.ok()) {
    // Malformed specs must be rejected as kInvalidArgument with a printable
    // message — the CLI forwards it verbatim to the operator.
    if (parsed.status().code() != mbi::StatusCode::kInvalidArgument) abort();
    parsed.status().ToString();
    return 0;
  }

  mbi::FaultInjector& injector = *parsed.value();
  injector.seed();
  (void)injector.OnOpenWrite("fuzz.tmp");

  uint8_t buffer[64] = {0};
  uint64_t offset = 0;
  for (uint32_t i = 0; i < num_writes; ++i) {
    const mbi::FaultInjector::WriteOutcome outcome =
        injector.OnWrite("fuzz.tmp", offset, buffer, write_size);
    // Invariants of the outcome contract (see fault_injector.h): the
    // persisted prefix never exceeds the buffer, and flips land inside it.
    if (outcome.prefix > write_size) abort();
    for (const auto& [flip_offset, mask] : outcome.flips) {
      if (flip_offset >= write_size) abort();
      if (mask == 0) abort();
    }
    // The Env advances the file offset only by what actually persisted.
    offset += outcome.prefix;
  }
  (void)injector.OnRename("fuzz.tmp", "fuzz");
  injector.writes_seen();
  injector.opens_seen();
  if (do_reset) {
    injector.Reset();
    if (injector.writes_seen() != 0 || injector.opens_seen() != 0) abort();
  }
  return 0;
}
