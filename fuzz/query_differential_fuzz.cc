/// Differential fuzz target: branch-and-bound vs. sequential scan, and the
/// dynamized (buffer + leveled components) fan-out vs. the same scan.
///
/// Decodes a transaction database, an index configuration, a query target,
/// and a similarity family from the fuzz input; builds a signature table
/// over the database; then asserts that the engine's *exact* k-NN answer
/// matches SequentialScanner's — bit-identical similarity sequences with
/// guaranteed_exact set, and identical neighbour ids everywhere the ids are
/// actually determined. This is the paper's core claim (branch and bound
/// with Lemma 2.1 bounds loses nothing against a full scan for any
/// admissible f(x, y)) checked on machine-generated adversarial inputs
/// rather than the hand-picked shapes in tests/oracle_equivalence_test.cc.
///
/// The second leg feeds the same rows through a DynamicIndex with a
/// fuzz-chosen buffer capacity, level fanout, and tombstone stride — so the
/// split between the unindexed buffer and the leveled components (and which
/// rows are deleted) is adversarial, not hand-picked. The merged fan-out
/// answer must match a single scan over the live union under the identical
/// tie semantics (see tests/dyn_differential_test.cc and DESIGN.md §13.3).
///
/// Tie semantics (this fuzzer's first real catch): the engine prunes an
/// entry as soon as its optimistic bound is <= the k-th best similarity, so
/// a candidate *tied* with the k-th best can sit in a pruned bucket and
/// never be evaluated. Which ids represent the tie group at the k-th
/// similarity value is therefore unspecified — the scan resolves that group
/// globally by ascending id, the engine only among candidates it evaluated
/// (see the contract note on BranchAndBoundEngine::FindKNearest). Above the
/// cutoff group nothing can be pruned, so ids must match exactly; within it
/// this harness instead recomputes each engine-returned id's similarity from
/// scratch and asserts it is genuinely tied, distinct, and in ascending-id
/// order.
///
/// Decoded parameters are clamped into the constructors' documented domains
/// (cardinality <= universe, items < universe, ...) — the goal is deep
/// coverage of query logic, not of MBI_CHECK precondition aborts, which the
/// container-parser target already owns for untrusted bytes.
///
/// Build with -DMBI_FUZZ=ON; see fuzz/CMakeLists.txt and DESIGN.md §9.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/similarity.h"
#include "dyn/dynamic_index.h"
#include "engine/engine.h"
#include "fuzz_input.h"
#include "kernel/dispatch.h"
#include "txn/database.h"
#include "txn/transaction.h"

namespace {

mbi::Transaction DecodeTransaction(mbi::fuzz::FuzzInput* input,
                                   uint32_t universe_size,
                                   uint32_t max_items) {
  const uint32_t count = input->TakeInRange(0, max_items);
  std::vector<mbi::ItemId> items;
  items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    items.push_back(input->TakeInRange(0, universe_size - 1));
  }
  return mbi::Transaction(std::move(items));  // Sorts and deduplicates.
}

std::unique_ptr<mbi::SimilarityFamily> DecodeFamily(uint8_t selector) {
  switch (selector % 4) {
    case 0: return std::make_unique<mbi::InverseHammingFamily>();
    case 1: return std::make_unique<mbi::MatchRatioFamily>();
    case 2: return std::make_unique<mbi::CosineFamily>();
    default: return std::make_unique<mbi::JaccardFamily>();
  }
}

/// Exact double equality (matching NaNs count as equal). Any difference
/// here is a real divergence between the two engines — both compute f over
/// the same integer (matches, hamming) pairs, so even floating-point
/// results must agree to the last bit.
bool SameSimilarity(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

/// How the engine-under-test's reported ids relate to the oracle scan.
struct IdResolver {
  /// The row behind a reported id, or nullptr when the id is not live
  /// (out of range, tombstoned) — which is itself a divergence.
  std::function<const mbi::Transaction*(mbi::TransactionId)> row;
  /// Maps the oracle's dense scan id to the id the engine must report for
  /// that row (identity for the static engine, gid for the dynamized one).
  std::function<mbi::TransactionId(mbi::TransactionId)> oracle_id;
};

/// The full tie-aware comparison for one exact answer, shared by both legs.
void CheckAgainstScan(const char* label,
                      const mbi::NearestNeighborResult& result,
                      const std::vector<mbi::Neighbor>& expected,
                      const mbi::Transaction& target,
                      const mbi::SimilarityFamily& family,
                      const IdResolver& resolver) {
  if (!result.guaranteed_exact) {
    std::fprintf(stderr, "%s divergence: exact search not guaranteed_exact\n",
                 label);
    abort();
  }
  if (result.neighbors.size() != expected.size()) {
    std::fprintf(stderr, "%s divergence: returned %zu neighbors, scan %zu\n",
                 label, result.neighbors.size(), expected.size());
    abort();
  }
  if (expected.empty()) return;

  // The similarity *sequence* must agree everywhere — pruning at the cutoff
  // can change which tied id is reported, never any value.
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!SameSimilarity(result.neighbors[i].similarity,
                        expected[i].similarity)) {
      std::fprintf(stderr,
                   "%s divergence: neighbor %zu similarity %.17g vs %.17g\n",
                   label, i, result.neighbors[i].similarity,
                   expected[i].similarity);
      abort();
    }
  }

  // Ids are fully determined above the cutoff tie group (every candidate
  // strictly better than the k-th similarity is evaluated by both sides and
  // both sort ties ascending).
  const double cutoff = expected.back().similarity;
  const std::unique_ptr<mbi::SimilarityFunction> function =
      family.ForTarget(target);
  for (size_t i = 0; i < expected.size(); ++i) {
    const mbi::TransactionId id = result.neighbors[i].id;
    const bool in_cutoff_group = SameSimilarity(expected[i].similarity, cutoff);
    if (!in_cutoff_group && id != resolver.oracle_id(expected[i].id)) {
      std::fprintf(stderr,
                   "%s divergence: neighbor %zu id %u (sim %.17g) vs scan id "
                   "%u (sim %.17g)\n",
                   label, i, id, result.neighbors[i].similarity,
                   resolver.oracle_id(expected[i].id), expected[i].similarity);
      abort();
    }
    if (in_cutoff_group) {
      // The engine's pick must be a live row that is genuinely tied:
      // recompute its similarity from scratch, bypassing the index entirely.
      const mbi::Transaction* row = resolver.row(id);
      if (row == nullptr) {
        std::fprintf(stderr, "%s divergence: neighbor %zu id %u is not live\n",
                     label, i, id);
        abort();
      }
      size_t match = 0, hamming = 0;
      mbi::MatchAndHamming(target, *row, &match, &hamming);
      const double recomputed = function->Evaluate(static_cast<int>(match),
                                                   static_cast<int>(hamming));
      if (!SameSimilarity(recomputed, result.neighbors[i].similarity)) {
        std::fprintf(stderr,
                     "%s divergence: neighbor %zu id %u reported %.17g, "
                     "recomputed %.17g\n",
                     label, i, id, result.neighbors[i].similarity, recomputed);
        abort();
      }
    }
    if (i > 0 && SameSimilarity(result.neighbors[i].similarity,
                                result.neighbors[i - 1].similarity) &&
        id <= result.neighbors[i - 1].id) {
      std::fprintf(stderr,
                   "%s divergence: tied neighbors %zu/%zu not in ascending-id "
                   "order (%u then %u)\n",
                   label, i - 1, i, result.neighbors[i - 1].id, id);
      abort();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  mbi::fuzz::FuzzInput input(data, size);

  const uint32_t universe_size = input.TakeInRange(2, 48);
  const uint32_t num_transactions = input.TakeInRange(1, 40);
  const uint32_t cardinality =
      input.TakeInRange(1, universe_size < 10 ? universe_size : 10);
  const uint32_t activation_threshold = input.TakeInRange(1, 3);
  const bool balanced_partitioner = input.TakeByte() % 2 == 1;
  const uint8_t family_selector = input.TakeByte();
  const uint32_t k = input.TakeInRange(1, 8);
  // Dynamized leg: where the buffer/level split lands and which rows are
  // tombstoned is part of the fuzz input, so the adversary controls the
  // component boundaries the k-NN merge has to agree across.
  const uint32_t buffer_capacity = input.TakeInRange(1, num_transactions + 4);
  const uint32_t level_fanout = input.TakeInRange(2, 4);
  const uint32_t delete_stride = input.TakeInRange(0, 4);
  // Force a SIMD dispatch path from the input so the differential check
  // also covers every kernel ISA (unsupported requests clamp to the widest
  // available one — see kernel/dispatch.h). The scan below runs through the
  // same kernels, so divergence here means an ISA variant broke
  // bit-identity, exactly what tests/kernel_test.cc guards deterministically.
  mbi::kernel::ForceIsa(static_cast<mbi::kernel::Isa>(input.TakeByte() % 4));

  mbi::TransactionDatabase database(universe_size);
  for (uint32_t i = 0; i < num_transactions; ++i) {
    database.Add(DecodeTransaction(&input, universe_size, 12));
  }
  const mbi::Transaction target =
      DecodeTransaction(&input, universe_size, 12);

  mbi::IndexBuildConfig config;
  config.clustering.target_cardinality = cardinality;
  config.table.activation_threshold =
      static_cast<int>(activation_threshold);
  config.use_balanced_partitioner = balanced_partitioner;

  mbi::SignatureTableEngine engine(&database);
  engine.AdoptTable(mbi::BuildIndex(database, config));

  const std::unique_ptr<mbi::SimilarityFamily> family =
      DecodeFamily(family_selector);

  // Exact search only: early termination and gap pruning trade exactness
  // away by design, so only the default options carry the bit-identical
  // guarantee against the scan.
  const mbi::NearestNeighborResult result =
      engine.FindKNearest(target, *family, k);
  const mbi::SequentialScanner scanner(&database);
  const std::vector<mbi::Neighbor> expected =
      scanner.FindKNearest(target, *family, k);
  const IdResolver static_resolver{
      [&](mbi::TransactionId id) {
        return id < database.size() ? &database.Get(id) : nullptr;
      },
      [](mbi::TransactionId id) { return id; }};
  CheckAgainstScan("static", result, expected, target, *family,
                   static_resolver);

  // Leg two: the same rows through the dynamized index. Every merge re-runs
  // the miner/clusterer with the same build config, so a divergence here is
  // in the fan-out/merge layer, not in a differently-tuned table.
  mbi::DynamicIndexOptions options;
  options.buffer_capacity = buffer_capacity;
  options.level_fanout = level_fanout;
  options.build = config;
  mbi::DynamicIndex dyn(universe_size, options);
  std::map<mbi::TransactionId, const mbi::Transaction*> live;
  std::vector<mbi::TransactionId> live_gids;
  for (uint32_t i = 0; i < num_transactions; ++i) {
    auto gid = dyn.Insert(database.Get(i));
    if (!gid.ok()) {
      std::fprintf(stderr, "dyn divergence: insert failed: %s\n",
                   gid.status().message().c_str());
      abort();
    }
    live.emplace(gid.value(), &database.Get(i));
  }
  mbi::TransactionDatabase union_db(universe_size);
  {
    uint32_t i = 0;
    for (auto it = live.begin(); it != live.end();) {
      if (delete_stride != 0 && i++ % (delete_stride + 1) == 0 &&
          live.size() > 1) {
        if (!dyn.Delete(it->first).ok()) {
          std::fprintf(stderr, "dyn divergence: delete of live gid failed\n");
          abort();
        }
        it = live.erase(it);
        continue;
      }
      union_db.Add(*it->second);
      live_gids.push_back(it->first);
      ++it;
    }
  }

  const mbi::NearestNeighborResult dyn_result =
      dyn.FindKNearest(target, *family, k);
  const mbi::SequentialScanner union_scanner(&union_db);
  const std::vector<mbi::Neighbor> dyn_expected =
      union_scanner.FindKNearest(target, *family, k);
  const IdResolver dyn_resolver{
      [&](mbi::TransactionId gid) -> const mbi::Transaction* {
        const auto it = live.find(gid);
        return it != live.end() ? it->second : nullptr;
      },
      [&](mbi::TransactionId id) { return live_gids[id]; }};
  CheckAgainstScan("dyn", dyn_result, dyn_expected, target, *family,
                   dyn_resolver);
  return 0;
}
