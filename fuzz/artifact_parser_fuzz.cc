/// Fuzz target: the v2 artifact container parser.
///
/// The input bytes are persisted as a file and fed to every reader the
/// durable-storage layer exposes — header/version validation, section
/// framing, CRC verification, and the artifact-specific section decoders for
/// all four magics ("MBID" database, "MBSP" partition, "MBST" signature
/// table, "MBPG" page spill) plus the `mbi verify` walk. The contract under
/// test is the one tests/property_fuzz_test.cc asserts for random
/// corruptions: arbitrary bytes must produce a clean Status (usually
/// kCorruption), never a crash, leak, or out-of-bounds read.
///
/// Build with -DMBI_FUZZ=ON; see fuzz/CMakeLists.txt and DESIGN.md §9.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/partition_io.h"
#include "core/table_io.h"
#include "storage/env.h"
#include "storage/format.h"
#include "storage/page_store.h"
#include "txn/database.h"
#include "txn/database_io.h"
#include "util/status.h"

namespace {

/// Scratch path reused across iterations (one fuzz process = one file).
std::string ArtifactPath() {
  const char* tmpdir = std::getenv("TMPDIR");  // NOLINT(concurrency-mt-unsafe)
  std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  return dir + "/mbi_artifact_fuzz_" + std::to_string(getpid()) + ".bin";
}

/// A small database for LoadSignatureTable to validate against; table files
/// that decode cleanly but index a different database must yield
/// kInvalidArgument, which is part of the surface under test.
const mbi::TransactionDatabase& FixtureDatabase() {
  static const mbi::TransactionDatabase* db = [] {
    auto* fixture = new mbi::TransactionDatabase(16);
    fixture->Add(mbi::Transaction({0, 1, 2}));
    fixture->Add(mbi::Transaction({1, 3, 5, 7}));
    fixture->Add(mbi::Transaction({2, 4, 6}));
    fixture->Add(mbi::Transaction({0, 8, 15}));
    return fixture;
  }();
  return *db;
}

/// The `mbi verify` walk: accept any known magic, iterate every section,
/// recording CRC verdicts until the framing gives out.
void WalkSections(mbi::Env* env, const std::string& path) {
  mbi::StatusOr<mbi::ArtifactReader> reader =
      mbi::ArtifactReader::Open(env, path, /*expected_magic=*/0);
  if (!reader.ok()) return;
  while (reader.value().remaining() > 0) {
    mbi::StatusOr<mbi::ArtifactReader::RawSection> section =
        reader.value().NextSection();
    if (!section.ok()) break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = ArtifactPath();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return 0;
  if (size > 0 && std::fwrite(data, 1, size, file) != size) {
    std::fclose(file);
    return 0;
  }
  std::fclose(file);

  mbi::Env* env = mbi::Env::Default();

  // Dispatch on the declared magic so the fuzzer reaches the type-specific
  // section decoders quickly; inputs with an unknown or truncated magic
  // still exercise every loader's header rejection below.
  uint32_t magic = 0;
  if (size >= sizeof(magic)) std::memcpy(&magic, data, sizeof(magic));

  if (magic == mbi::kDatabaseMagic || size < sizeof(magic)) {
    mbi::LoadDatabase(path, env).status().ToString();
  }
  if (magic == mbi::kPartitionMagic || size < sizeof(magic)) {
    mbi::LoadPartition(path, env).status().ToString();
  }
  if (magic == mbi::kTableMagic || size < sizeof(magic)) {
    mbi::LoadSignatureTable(path, FixtureDatabase(), env).status().ToString();
    mbi::VerifySignatureTableFile(path, env).ToString();
  }
  if (magic == mbi::kPageSpillMagic || size < sizeof(magic)) {
    mbi::PageStore::LoadSpillFile(path, env).status().ToString();
  }
  WalkSections(env, path);
  return 0;
}
