#ifndef MBI_FUZZ_FUZZ_INPUT_H_
#define MBI_FUZZ_FUZZ_INPUT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace mbi::fuzz {

/// Minimal FuzzedDataProvider-style cursor over the raw fuzz input. Each
/// harness decodes its structured pieces through this so the decoding is
/// total: when the input runs out, every getter degrades to zeros instead of
/// reading out of bounds, which keeps the byte→test-case mapping stable for
/// corpus minimization.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - position_; }
  bool empty() const { return remaining() == 0; }

  uint8_t TakeByte() {
    if (empty()) return 0;
    return data_[position_++];
  }

  uint32_t TakeU32() {
    uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<uint32_t>(TakeByte()) << shift;
    }
    return value;
  }

  /// Uniform-ish value in [lo, hi] (inclusive); requires lo <= hi.
  uint32_t TakeInRange(uint32_t lo, uint32_t hi) {
    const uint32_t span = hi - lo + 1;
    if (span == 0) return TakeU32();  // Full range.
    return lo + TakeU32() % span;
  }

  /// Up to `max_size` raw bytes as a string (shorter when input runs dry).
  std::string TakeString(size_t max_size) {
    const size_t take = max_size < remaining() ? max_size : remaining();
    std::string out(reinterpret_cast<const char*>(data_ + position_), take);
    position_ += take;
    return out;
  }

  /// All unconsumed bytes.
  std::string TakeRemainder() { return TakeString(remaining()); }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t position_ = 0;
};

}  // namespace mbi::fuzz

#endif  // MBI_FUZZ_FUZZ_INPUT_H_
