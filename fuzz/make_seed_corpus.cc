/// Regenerates the checked-in seed corpora under fuzz/corpus/.
///
/// Seeds give both fuzzing modes a running start: libFuzzer mutates from
/// structurally valid inputs instead of spending its budget rediscovering
/// the container framing, and the gcc standalone driver (standalone_main.cc)
/// replays them as deterministic regression tests via the fuzz_*_corpus
/// ctest entries. Everything here is deterministic — no clocks, no PRNG —
/// so regeneration is reproducible and diffs stay reviewable.
///
///   ./make_seed_corpus [corpus-root]   (default: fuzz/corpus)

#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/index_builder.h"
#include "core/partition_io.h"
#include "core/signature_table.h"
#include "core/table_io.h"
#include "storage/page_store.h"
#include "txn/database.h"
#include "txn/database_io.h"
#include "util/macros.h"
#include "util/status.h"

namespace {

void CheckOk(const mbi::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void EnsureDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "mkdir %s failed\n", path.c_str());
    std::exit(1);
  }
}

void WriteFile(const std::string& path, const void* data, size_t size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  MBI_CHECK_MSG(file != nullptr, "fopen for write failed");
  if (size != 0) MBI_CHECK(std::fwrite(data, 1, size, file) == size);
  MBI_CHECK(std::fclose(file) == 0);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), size);
}

void WriteString(const std::string& path, const std::string& text) {
  WriteFile(path, text.data(), text.size());
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  MBI_CHECK_MSG(file != nullptr, "fopen for read failed");
  MBI_CHECK(std::fseek(file, 0, SEEK_END) == 0);
  const long size = std::ftell(file);
  MBI_CHECK(size >= 0);
  MBI_CHECK(std::fseek(file, 0, SEEK_SET) == 0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!bytes.empty()) {
    MBI_CHECK(std::fread(bytes.data(), 1, bytes.size(), file) == bytes.size());
  }
  MBI_CHECK(std::fclose(file) == 0);
  return bytes;
}

/// Small but non-trivial fixture: overlapping baskets over a 24-item
/// universe, enough transactions that the table has multi-page buckets.
mbi::TransactionDatabase MakeFixtureDatabase() {
  mbi::TransactionDatabase database(24);
  for (uint32_t i = 0; i < 30; ++i) {
    std::vector<mbi::ItemId> items;
    for (uint32_t j = 0; j < 3 + i % 5; ++j) {
      items.push_back((i * 7 + j * 5) % 24);
    }
    database.Add(mbi::Transaction(std::move(items)));
  }
  return database;
}

/// Fault-spec harness inputs start with two LE u32s (num_writes, write_size)
/// and a reset byte before the spec text — see fault_spec_fuzz.cc.
std::string FaultSeed(uint32_t num_writes, uint32_t write_size,
                      uint8_t do_reset, const std::string& spec) {
  std::string seed(9, '\0');
  std::memcpy(seed.data(), &num_writes, 4);
  std::memcpy(seed.data() + 4, &write_size, 4);
  seed[8] = static_cast<char>(do_reset);
  return seed + spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "fuzz/corpus";
  EnsureDir(root);
  const std::string artifact_dir = root + "/artifact_parser_fuzz";
  const std::string fault_dir = root + "/fault_spec_fuzz";
  const std::string query_dir = root + "/query_differential_fuzz";
  EnsureDir(artifact_dir);
  EnsureDir(fault_dir);
  EnsureDir(query_dir);

  // --- artifact_parser_fuzz: one valid v2 artifact per magic, plus a
  // truncation that exercises the corruption paths.
  const mbi::TransactionDatabase database = MakeFixtureDatabase();
  CheckOk(mbi::SaveDatabase(database, artifact_dir + "/database.mbid"));

  mbi::IndexBuildConfig config;
  config.clustering.target_cardinality = 6;
  const mbi::SignatureTable table = mbi::BuildIndex(database, config);
  CheckOk(mbi::SaveSignatureTable(table, artifact_dir + "/table.mbst"));
  CheckOk(
      mbi::SavePartition(table.partition(), artifact_dir + "/partition.mbsp"));

  mbi::PageStore pages(128);
  for (uint32_t id = 0; id < 40; ++id) {
    pages.Append(id, 4 + 4 * (1 + id % 6));
    if (id % 9 == 8) pages.SealCurrentPage();
  }
  CheckOk(pages.SpillToFile(artifact_dir + "/pages.mbpg"));

  const std::vector<uint8_t> full = ReadFile(artifact_dir + "/database.mbid");
  MBI_CHECK(full.size() > 40);
  WriteFile(artifact_dir + "/database_truncated.mbid", full.data(), 40);
  // Magic shorter than 4 bytes: the harness runs every loader on it.
  WriteFile(artifact_dir + "/short_magic.bin", "MB", 2);

  // --- fault_spec_fuzz: every production of the spec grammar, plus an
  // invalid spec (FromSpec must reject it, not crash).
  WriteString(fault_dir + "/nospace", FaultSeed(4, 32, 0, "nospace_write=2;seed=7"));
  WriteString(fault_dir + "/torn", FaultSeed(6, 48, 0, "torn_write=3:17"));
  WriteString(fault_dir + "/flip_rename",
              FaultSeed(8, 64, 1, "flip_bit=100:3;fail_rename=1"));
  WriteString(fault_dir + "/transient_open",
              FaultSeed(5, 24, 0, "transient_write=2:2;fail_open=1"));
  WriteString(fault_dir + "/everything",
              FaultSeed(12, 64, 1,
                        "fail_write=9;torn_write=1:0;flip_bit=0:7;seed=1"));
  WriteString(fault_dir + "/invalid", FaultSeed(1, 8, 0, "torn_write=;x"));

  // --- query_differential_fuzz: byte blobs the decoder maps onto varied
  // database/query shapes (each TakeInRange consumes 4 LE bytes).
  const std::string patterns[] = {
      std::string(64, '\0'),                       // minimal everything
      std::string(64, '\xff'),                     // maximal everything
      "\x2f\x00\x00\x00\x26\x00\x00\x00" + std::string(120, '\x55'),
      "\x07\x00\x00\x00\x01\x00\x00\x00\x09\x00\x00\x00" +
          std::string(96, '\xa3'),
  };
  const char* names[] = {"zeros", "ones", "mid", "small"};
  for (size_t i = 0; i < 4; ++i) {
    WriteString(query_dir + "/" + names[i], patterns[i]);
  }

  std::printf("seed corpus regenerated under %s\n", root.c_str());
  return 0;
}
