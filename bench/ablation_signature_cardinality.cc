// Ablation: signature cardinality K — the paper's memory-availability axis
// (§5 scalability axis 3). Sweeps K well beyond the paper's 13-15, reporting
// pruning efficiency, accuracy at 0.5% termination, occupied entries, and
// the 2^K directory memory the paper's cost model charges.

#include <cstdio>

#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse("Ablation: signature cardinality K",
                                       argc, argv, &flags)) {
    return 0;
  }
  const uint64_t size = 200'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Ablation",
                          "signature cardinality K (memory availability)",
                          "T10.I6.D" + std::to_string(size), flags);

  mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
      10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  mbi::TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<mbi::Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  mbi::InverseHammingFamily family;

  mbi::TablePrinter table({"K", "directory_KiB", "occupied", "pruning_%",
                           "accuracy@0.5%_%"});
  for (uint32_t k : {8u, 10u, 12u, 13u, 14u, 15u, 17u, 19u}) {
    mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, k);
    mbi::BranchAndBoundEngine engine(&db, &sig_table);
    table.AddRow(
        {mbi::TablePrinter::Format(static_cast<int64_t>(k)),
         mbi::TablePrinter::Format(
             static_cast<int64_t>(sig_table.MemoryFootprintBytes() / 1024)),
         mbi::TablePrinter::Format(
             static_cast<int64_t>(sig_table.entries().size())),
         mbi::TablePrinter::Format(
             mbi::bench::AvgPruningEfficiency(engine, targets, family), 2),
         mbi::TablePrinter::Format(
             mbi::bench::AccuracyAtTermination(engine, targets, family,
                                               0.005),
             1)});
  }
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
