// Head-to-head comparison of the three access methods on one dataset:
// signature table (exact branch-and-bound, and 2% early termination),
// inverted index (two-phase), and sequential scan. Reports per-query wall
// clock, the fraction of transactions accessed, physical page reads, and
// each method's index footprint. This is the engineering summary behind the
// paper's §5.1 discussion.

#include <cstdio>

#include "baseline/inverted_index.h"
#include "baseline/sequential_scan.h"
#include "common/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Comparison: signature table vs inverted index vs sequential scan",
          argc, argv, &flags)) {
    return 0;
  }
  const uint64_t size = 400'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Comparison",
                          "access methods, match/hamming ratio, k = 10",
                          "T10.I6.D" + std::to_string(size), flags);

  mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
      10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  mbi::TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<mbi::Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  mbi::MatchRatioFamily family;

  mbi::Stopwatch build_timer;
  mbi::SignatureTable table = mbi::bench::BuildTable(db, 15);
  double table_build_s = build_timer.ElapsedSeconds();
  build_timer.Reset();
  mbi::InvertedIndex inverted(&db, 4096, 0, /*compress_postings=*/true);
  double inverted_build_s = build_timer.ElapsedSeconds();
  mbi::BranchAndBoundEngine engine(&db, &table);
  mbi::SequentialScanner scanner(&db);

  struct Row {
    double millis = 0.0;
    double accessed = 0.0;
    double pages = 0.0;
  };
  Row sig_exact, sig_fast, inv, scan;
  const double n = static_cast<double>(targets.size());

  for (const mbi::Transaction& target : targets) {
    mbi::Stopwatch timer;
    auto exact = engine.FindKNearest(target, family, 10);
    sig_exact.millis += timer.ElapsedMillis();
    sig_exact.accessed += exact.stats.AccessedFraction();
    sig_exact.pages += static_cast<double>(exact.stats.io.pages_read);

    mbi::SearchOptions options;
    options.max_access_fraction = 0.02;
    timer.Reset();
    auto fast = engine.FindKNearest(target, family, 10, options);
    sig_fast.millis += timer.ElapsedMillis();
    sig_fast.accessed += fast.stats.AccessedFraction();
    sig_fast.pages += static_cast<double>(fast.stats.io.pages_read);

    timer.Reset();
    auto two_phase = inverted.FindKNearest(target, family, 10);
    inv.millis += timer.ElapsedMillis();
    inv.accessed += two_phase.accessed_fraction;
    inv.pages += static_cast<double>(two_phase.pages_touched);

    timer.Reset();
    mbi::IoStats scan_io;
    scanner.FindKNearest(target, family, 10, &scan_io);
    scan.millis += timer.ElapsedMillis();
    scan.accessed += 1.0;
    scan.pages += static_cast<double>(scan_io.pages_read);
  }

  mbi::TablePrinter table_out(
      {"method", "ms/query", "%tx_accessed", "pages/query"});
  auto add = [&](const char* name, const Row& row) {
    table_out.AddRow({name, mbi::TablePrinter::Format(row.millis / n, 2),
                      mbi::TablePrinter::Format(100.0 * row.accessed / n, 2),
                      mbi::TablePrinter::Format(row.pages / n, 0)});
  };
  add("signature_table (exact)", sig_exact);
  add("signature_table (2% term.)", sig_fast);
  add("inverted_index (two-phase)", inv);
  add("sequential_scan", scan);
  flags.csv ? table_out.PrintCsv(stdout) : table_out.Print(stdout);

  std::printf(
      "\nindex footprints: signature directory %llu KiB (+%llu data pages), "
      "compressed postings %llu KiB; build times %.1fs vs %.1fs\n",
      static_cast<unsigned long long>(table.MemoryFootprintBytes() / 1024),
      static_cast<unsigned long long>(table.store().page_store().size()),
      static_cast<unsigned long long>(inverted.PostingsBytes() / 1024),
      table_build_s, inverted_build_s);
  return 0;
}
