// Ablation: entry visit order (paper §4 discusses sorting the signature
// table entries by optimistic bound vs by the similarity between
// supercoordinates). Compares the accuracy of both orders across early
// termination levels at K = 15; pruning uses the optimistic bounds in both.

#include <cstdio>

#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse("Ablation: entry sort order", argc,
                                       argv, &flags)) {
    return 0;
  }
  const uint64_t size = 200'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Ablation",
                          "entry sort order: optimistic bound vs "
                          "supercoordinate similarity (K = 15)",
                          "T10.I6.D" + std::to_string(size), flags);

  mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
      10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  mbi::TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<mbi::Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, 15);
  mbi::BranchAndBoundEngine engine(&db, &sig_table);
  mbi::MatchRatioFamily family;

  mbi::TablePrinter table(
      {"termination_%", "opt_bound_acc_%", "supercoord_acc_%"});
  for (double level : {0.002, 0.005, 0.01, 0.02}) {
    table.AddRow(
        {mbi::TablePrinter::Format(100.0 * level, 1),
         mbi::TablePrinter::Format(
             mbi::bench::AccuracyAtTermination(
                 engine, targets, family, level,
                 mbi::EntrySortOrder::kOptimisticBound),
             1),
         mbi::TablePrinter::Format(
             mbi::bench::AccuracyAtTermination(
                 engine, targets, family, level,
                 mbi::EntrySortOrder::kSupercoordinateSimilarity),
             1)});
  }
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
