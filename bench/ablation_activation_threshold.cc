// Ablation: the activation threshold r (paper §5 footnote 4 — "for larger
// transaction sizes, higher values of the activation threshold provided
// better performance"). Sweeps r in {1, 2, 3} for T = 10 and T = 15 at
// K = 15, reporting pruning efficiency and accuracy at 2% termination.

#include <cstdio>

#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Ablation: activation threshold r", argc, argv, &flags)) {
    return 0;
  }
  const uint64_t size = 200'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Ablation",
                          "activation threshold r (K = 15, Tx.I6)",
                          "Tx.I6.D" + std::to_string(size), flags);

  mbi::InverseHammingFamily family;
  mbi::TablePrinter table(
      {"avg_tx_size", "r", "pruning_%", "accuracy@2%_%"});
  for (double avg_size : {10.0, 15.0}) {
    mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
        avg_size, 6.0, static_cast<uint64_t>(flags.seed)));
    mbi::TransactionDatabase db = generator.GenerateDatabase(size);
    std::vector<mbi::Transaction> targets =
        generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
    for (int r : {1, 2, 3}) {
      mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, 15, r);
      mbi::BranchAndBoundEngine engine(&db, &sig_table);
      table.AddRow(
          {mbi::TablePrinter::Format(avg_size, 0),
           mbi::TablePrinter::Format(static_cast<int64_t>(r)),
           mbi::TablePrinter::Format(
               mbi::bench::AvgPruningEfficiency(engine, targets, family), 2),
           mbi::TablePrinter::Format(
               mbi::bench::AccuracyAtTermination(engine, targets, family,
                                                 0.02),
               1)});
    }
  }
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
