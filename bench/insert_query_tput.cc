// Dynamized-index throughput harness: sustained insert rates and query
// latency while background merges run — the numbers ISSUE 9's Bentley–Saxe
// leveling is accountable to.
//
// Three measurements:
//
//   BM_DynInsert          — sustained single-writer insert throughput with
//                           merges on a background pool, per buffer capacity
//                           (the knob trading ingest speed for query work);
//   BM_DynQueryQuiescent  — k-NN fan-out latency across settled levels, no
//                           concurrent writes (the read-side cost of the
//                           leveled shape vs. one monolithic table);
//   BM_DynQueryUnderIngest — the same queries while a writer thread churns
//                           rows (insert + delete-oldest) and merges rebuild
//                           levels underneath; p50_us/p99_us counters record
//                           the tail the background work induces.
//
// Run from the repo root with no arguments to (re)generate BENCH_dyn.json:
//
//   ./build/bench/insert_query_tput
//
// CI runs it with --benchmark_min_time=0.05 as a build-and-run smoke test
// and uploads the JSON; numbers are recorded, not gated.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_env.h"
#include "common/harness.h"
#include "dyn/dynamic_index.h"
#include "gen/quest_generator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

constexpr size_t kUniverse = 1000;

QuestGeneratorConfig DataConfig(uint64_t seed) {
  QuestGeneratorConfig config;
  config.universe_size = kUniverse;
  config.num_large_itemsets = 2000;
  config.avg_itemset_size = 6.0;
  config.avg_transaction_size = 10.0;
  config.seed = seed;
  return config;
}

DynamicIndexOptions DynOptions(size_t buffer_capacity, ThreadPool* pool) {
  DynamicIndexOptions options;
  options.buffer_capacity = buffer_capacity;
  options.level_fanout = 4;
  options.build.clustering.target_cardinality = 11;
  options.pool = pool;
  return options;
}

/// Pre-generated rows so the generator never sits inside a timed region.
const std::vector<Transaction>& SharedRows() {
  static const std::vector<Transaction>& rows = *new std::vector<Transaction>(
      [] {
        QuestGenerator generator(DataConfig(42));
        std::vector<Transaction> out;
        out.reserve(100'000);
        for (size_t i = 0; i < 100'000; ++i) {
          out.push_back(generator.NextTransaction());
        }
        return out;
      }());
  return rows;
}

void InsertRetrying(DynamicIndex* index, const Transaction& txn) {
  while (!index->Insert(txn).ok()) std::this_thread::yield();
}

// --- Sustained insert throughput, merges on a background pool. The index is
// rebuilt from scratch whenever the row budget is exhausted (outside the
// timed region), so every timed insert sees the steady leveled shape. ---

void BM_DynInsert(benchmark::State& state) {
  const std::vector<Transaction>& rows = SharedRows();
  const auto buffer_capacity = static_cast<size_t>(state.range(0));
  ThreadPool pool(2);
  auto index = std::make_unique<DynamicIndex>(
      kUniverse, DynOptions(buffer_capacity, &pool));
  size_t next = 0;
  for (auto _ : state) {
    if (next == rows.size()) {
      state.PauseTiming();
      index->WaitForMaintenance();
      index = std::make_unique<DynamicIndex>(
          kUniverse, DynOptions(buffer_capacity, &pool));
      next = 0;
      state.ResumeTiming();
    }
    InsertRetrying(index.get(), rows[next++]);
  }
  index->WaitForMaintenance();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["components"] =
      static_cast<double>(index->num_components());
}
BENCHMARK(BM_DynInsert)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// --- Query latency across settled levels (no writers). ---

void BM_DynQueryQuiescent(benchmark::State& state) {
  const std::vector<Transaction>& rows = SharedRows();
  constexpr size_t kRows = 50'000;
  ThreadPool pool(2);
  DynamicIndex index(kUniverse, DynOptions(256, &pool));
  for (size_t i = 0; i < kRows; ++i) InsertRetrying(&index, rows[i]);
  index.WaitForMaintenance();

  QuestGenerator generator(DataConfig(7));
  std::vector<Transaction> queries = generator.GenerateQueries(64);
  MatchRatioFamily family;
  const auto k = static_cast<size_t>(state.range(0));
  DynQueryContext context;
  NearestNeighborResult result;
  size_t i = 0;
  for (auto _ : state) {
    index.FindKNearest(queries[i % queries.size()], family, k,
                       SearchOptions{}, &context, &result);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["components"] = static_cast<double>(index.num_components());
}
BENCHMARK(BM_DynQueryQuiescent)
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);

// --- Query latency while a writer churns rows and merges rebuild levels.
// The writer keeps the live size roughly constant (insert one, delete the
// oldest) so the benchmark measures interference, not index growth. ---

void BM_DynQueryUnderIngest(benchmark::State& state) {
  const std::vector<Transaction>& rows = SharedRows();
  constexpr size_t kWarmRows = 30'000;
  ThreadPool pool(2);
  DynamicIndex index(kUniverse, DynOptions(256, &pool));
  for (size_t i = 0; i < kWarmRows; ++i) InsertRetrying(&index, rows[i]);
  index.WaitForMaintenance();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    size_t next = kWarmRows;
    TransactionId oldest = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      InsertRetrying(&index, rows[next % rows.size()]);
      ++next;
      index.Delete(oldest++).IgnoreError();  // Steady-state churn.
    }
  });

  QuestGenerator generator(DataConfig(7));
  std::vector<Transaction> queries = generator.GenerateQueries(64);
  MatchRatioFamily family;
  const auto k = static_cast<size_t>(state.range(0));
  DynQueryContext context;
  NearestNeighborResult result;
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    Stopwatch timer;
    index.FindKNearest(queries[i % queries.size()], family, k,
                       SearchOptions{}, &context, &result);
    latencies_us.push_back(timer.ElapsedMillis() * 1000.0);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  stop.store(true);
  writer.join();
  index.WaitForMaintenance();

  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = latencies_us[latencies_us.size() / 2];
    state.counters["p99_us"] =
        latencies_us[latencies_us.size() * 99 / 100];
  }
  state.counters["tombstones"] = static_cast<double>(index.tombstone_count());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DynQueryUnderIngest)
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mbi

/// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_dyn.json
/// (JSON format) so a bare `./build/bench/insert_query_tput` from the repo
/// root regenerates the committed numbers. Any explicit --benchmark_out wins.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_dyn.json";
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  mbi::bench::RequireReleaseBuild("insert_query_tput");
  mbi::bench::StampBuildContext();
  const int cpu = mbi::bench::PinBenchmarkThread();
  benchmark::AddCustomContext("mbi_pinned_cpu", std::to_string(cpu));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
