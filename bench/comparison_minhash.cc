// Signature table vs MinHash/LSH — the paper's method against the technique
// that later superseded it for set-similarity search. Both answer Jaccard
// top-1 queries (Jaccard x/(x+y) is admissible under the paper's §2
// constraints, so the *same* signature table serves it unchanged, while the
// MinHash index is purpose-built for Jaccard and nothing else).
//
// Reported per method: recall of the true nearest neighbour (vs an exact
// scan), fraction of the database touched, and index memory. The signature
// table at full completion is exact by construction; its 2%-termination mode
// and several LSH banding configurations populate the recall/work trade-off.

#include <cstdio>

#include "baseline/minhash.h"
#include "baseline/sequential_scan.h"
#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Comparison: signature table vs MinHash/LSH under Jaccard", argc,
          argv, &flags)) {
    return 0;
  }
  const uint64_t size = 200'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Comparison",
                          "signature table vs MinHash/LSH, Jaccard top-1",
                          "T10.I6.D" + std::to_string(size), flags);

  mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
      10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  mbi::TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<mbi::Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  mbi::JaccardFamily family;
  mbi::SequentialScanner scanner(&db);

  // Ground truth once per query.
  std::vector<double> truth(targets.size());
  for (size_t q = 0; q < targets.size(); ++q) {
    truth[q] = scanner.FindKNearest(targets[q], family, 1)[0].similarity;
  }

  mbi::TablePrinter table(
      {"method", "recall@1_%", "%tx_accessed", "memory_KiB"});
  const double n = static_cast<double>(targets.size());

  // Signature table: exact and 2%-terminated.
  mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, 15);
  mbi::BranchAndBoundEngine engine(&db, &sig_table);
  for (double termination : {1.0, 0.02}) {
    int found = 0;
    double accessed = 0.0;
    mbi::SearchOptions options;
    options.max_access_fraction = termination;
    for (size_t q = 0; q < targets.size(); ++q) {
      auto result = engine.FindNearest(targets[q], family, options);
      found += result.neighbors[0].similarity == truth[q];
      accessed += result.stats.AccessedFraction();
    }
    char name[64];
    std::snprintf(name, sizeof(name), "signature_table (%s)",
                  termination >= 1.0 ? "exact" : "2% term.");
    table.AddRow({name, mbi::TablePrinter::Format(100.0 * found / n, 1),
                  mbi::TablePrinter::Format(100.0 * accessed / n, 2),
                  mbi::TablePrinter::Format(static_cast<int64_t>(
                      sig_table.MemoryFootprintBytes() / 1024))});
  }

  // MinHash/LSH at three banding operating points.
  struct Banding {
    uint32_t bands, rows;
  };
  for (Banding banding : {Banding{32, 2}, Banding{16, 4}, Banding{8, 8}}) {
    mbi::MinHashConfig config;
    config.num_bands = banding.bands;
    config.rows_per_band = banding.rows;
    mbi::MinHashIndex index(&db, config);
    int found = 0;
    double accessed = 0.0;
    for (size_t q = 0; q < targets.size(); ++q) {
      auto result = index.FindKNearestJaccard(targets[q], 1);
      found += !result.neighbors.empty() &&
               result.neighbors[0].similarity == truth[q];
      accessed += result.accessed_fraction;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "minhash_lsh (b=%u, r=%u)",
                  banding.bands, banding.rows);
    table.AddRow({name, mbi::TablePrinter::Format(100.0 * found / n, 1),
                  mbi::TablePrinter::Format(100.0 * accessed / n, 2),
                  mbi::TablePrinter::Format(
                      static_cast<int64_t>(index.MemoryBytes() / 1024))});
  }
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  std::printf(
      "\nnote: the signature table answers *any* admissible f(x,y) from one "
      "build and certifies exactness; MinHash/LSH is Jaccard-only and "
      "approximate.\n");
  return 0;
}
