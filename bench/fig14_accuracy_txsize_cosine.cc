// Reproduces paper Figure 14: accuracy at 2% termination vs average
// transaction size for the cosine similarity function, Tx.I6.D800K.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTransactionSize("Figure 14", "cosine", argc,
                                                  argv);
}
