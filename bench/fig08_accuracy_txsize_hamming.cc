// Reproduces paper Figure 8: accuracy at 2% termination vs average
// transaction size for the Hamming distance similarity function, Tx.I6.D800K.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTransactionSize("Figure 8", "hamming", argc,
                                                  argv);
}
