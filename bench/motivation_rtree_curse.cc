// Motivation experiment (paper §1): why spatial indexes are ruled out for
// market-basket data. Sweeps the dimensionality (universe size) at fixed
// database size and compares the fraction of the database an R-tree
// (Guttman, searched with Roussopoulos et al. MINDIST branch and bound —
// the paper's ref [17]) must access for an exact Hamming nearest neighbour,
// against the signature table on the same data — "as a rule of thumb, when
// the dimensionality is more than 10, none of the above methods work well".

#include <cstdio>

#include "baseline/rtree.h"
#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Motivation: R-tree dimensionality curse on basket data", argc,
          argv, &flags)) {
    return 0;
  }
  const uint64_t size = 50'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner(
      "Motivation", "R-tree vs signature table as dimensionality grows",
      "T10.Ix.D" + std::to_string(size), flags);

  mbi::InverseHammingFamily family;
  mbi::TablePrinter table({"universe_dims", "rtree_%tx", "rtree_free_dims_%",
                           "sigtable_%tx (K=13)"});
  for (uint32_t universe : {50u, 100u, 250u, 500u, 1000u}) {
    mbi::QuestGeneratorConfig gen_config = mbi::bench::PaperGeneratorConfig(
        10.0, 6.0, static_cast<uint64_t>(flags.seed));
    gen_config.universe_size = universe;
    gen_config.num_large_itemsets = std::max(50u, universe / 2);
    mbi::QuestGenerator generator(gen_config);
    mbi::TransactionDatabase db = generator.GenerateDatabase(size);
    std::vector<mbi::Transaction> targets =
        generator.GenerateQueries(static_cast<uint64_t>(flags.queries));

    mbi::BinaryRTree rtree(&db, mbi::RTreeConfig{});
    mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, 13);
    mbi::BranchAndBoundEngine engine(&db, &sig_table);

    double rtree_access = 0.0, table_access = 0.0;
    for (const mbi::Transaction& target : targets) {
      rtree_access +=
          rtree.FindKNearestHamming(target, 1).stats.AccessedFraction();
      table_access +=
          engine.FindNearest(target, family).stats.AccessedFraction();
    }
    double n = static_cast<double>(targets.size());
    auto tree_stats = rtree.ComputeTreeStats();
    table.AddRow(
        {mbi::TablePrinter::Format(static_cast<int64_t>(universe)),
         mbi::TablePrinter::Format(100.0 * rtree_access / n, 2),
         mbi::TablePrinter::Format(
             100.0 * tree_stats.root_child_free_dim_fraction, 1),
         mbi::TablePrinter::Format(100.0 * table_access / n, 2)});
  }
  std::printf("database fraction accessed per exact NN query:\n");
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
