// Reproduces paper Figure 7: accuracy vs early-termination level for the
// Hamming distance similarity function, T10.I6.D800K, K = 13/14/15.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTermination("Figure 7", "hamming", argc,
                                              argv);
}
