// Reproduces paper Figure 9: pruning efficiency vs database size for the
// match/hamming-distance-ratio similarity function (f = x/y), T10.I6.Dx.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunPruningVsDbSize("Figure 9", "match_ratio", argc, argv);
}
