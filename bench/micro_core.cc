// Google-benchmark microbenchmarks for the core index operations: similarity
// primitives, bound computation, supercoordinate mapping, table construction,
// and end-to-end query latency vs signature cardinality.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/bounds.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

QuestGeneratorConfig BenchConfig() {
  QuestGeneratorConfig config;
  config.universe_size = 1000;
  config.num_large_itemsets = 2000;
  config.avg_itemset_size = 6.0;
  config.avg_transaction_size = 10.0;
  config.seed = 42;
  return config;
}

struct SharedData {
  TransactionDatabase db;
  std::vector<Transaction> queries;

  static const SharedData& Get() {
    static const SharedData& instance = *new SharedData();
    return instance;
  }

 private:
  SharedData() : db(1000) {
    QuestGenerator generator(BenchConfig());
    db = generator.GenerateDatabase(50'000);
    queries = generator.GenerateQueries(64);
  }
};

void BM_MatchAndHamming(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  size_t i = 0;
  for (auto _ : state) {
    size_t match = 0, hamming = 0;
    MatchAndHamming(data.queries[i % data.queries.size()],
                    data.db.Get(static_cast<TransactionId>(i % data.db.size())),
                    &match, &hamming);
    benchmark::DoNotOptimize(match + hamming);
    ++i;
  }
}
BENCHMARK(BM_MatchAndHamming);

void BM_SupercoordinateMapping(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  SignatureTable table =
      mbi::BuildIndex(data.db, [] {
        IndexBuildConfig config;
        config.clustering.target_cardinality = 15;
        return config;
      }());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSupercoordinate(
        data.db.Get(static_cast<TransactionId>(i % data.db.size())),
        table.partition(), 1));
    ++i;
  }
}
BENCHMARK(BM_SupercoordinateMapping);

void BM_BoundComputation(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  IndexBuildConfig config;
  config.clustering.target_cardinality =
      static_cast<uint32_t>(state.range(0));
  SignatureTable table = BuildIndex(data.db, config);
  BoundCalculator calc(table.partition().CountsPerSignature(data.queries[0]),
                       1);
  size_t i = 0;
  const auto& entries = table.entries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.Compute(entries[i % entries.size()].coordinate));
    ++i;
  }
}
BENCHMARK(BM_BoundComputation)->Arg(10)->Arg(15)->Arg(20);

void BM_TableBuild(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  const auto db_size = static_cast<uint64_t>(state.range(0));
  TransactionDatabase db(data.db.universe_size());
  for (TransactionId id = 0; id < db_size; ++id) db.Add(data.db.Get(id));
  for (auto _ : state) {
    IndexBuildConfig config;
    config.clustering.target_cardinality = 15;
    SignatureTable table = BuildIndex(db, config);
    benchmark::DoNotOptimize(table.entries().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db_size));
}
BENCHMARK(BM_TableBuild)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_NearestNeighborQuery(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  IndexBuildConfig config;
  config.clustering.target_cardinality =
      static_cast<uint32_t>(state.range(0));
  SignatureTable table = BuildIndex(data.db, config);
  BranchAndBoundEngine engine(&data.db, &table);
  InverseHammingFamily family;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.FindNearest(data.queries[i % data.queries.size()], family));
    ++i;
  }
}
BENCHMARK(BM_NearestNeighborQuery)->Arg(11)->Arg(13)->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_KNearestQuery(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  IndexBuildConfig config;
  config.clustering.target_cardinality = 15;
  SignatureTable table = BuildIndex(data.db, config);
  BranchAndBoundEngine engine(&data.db, &table);
  MatchRatioFamily family;
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.FindKNearest(data.queries[i % data.queries.size()], family, k));
    ++i;
  }
}
BENCHMARK(BM_KNearestQuery)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mbi

BENCHMARK_MAIN();
