// Reproduces paper Figure 11: accuracy at 2% termination vs average
// transaction size for the match/hamming-distance-ratio function, Tx.I6.D800K.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTransactionSize("Figure 11", "match_ratio",
                                                  argc, argv);
}
