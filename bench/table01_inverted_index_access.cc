// Reproduces paper Table 1: the minimum percentage of transactions an
// inverted index must access (the phase-1 candidate set, no page scattering)
// as the average transaction size grows — and, beyond the paper's table, the
// percentage of *pages* those candidates touch on a sequential layout (the
// page-scattering effect §5.1 argues about) next to the signature table's
// access percentage on the same data.

#include <cstdio>

#include "baseline/inverted_index.h"
#include "common/harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Table 1: inverted-index access percentage vs avg transaction size",
          argc, argv, &flags)) {
    return 0;
  }
  const uint64_t size = 800'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner("Table 1",
                          "minimum % of transactions accessed by an inverted "
                          "index (no scattering)",
                          "Tx.I6.D" + std::to_string(size), flags);

  mbi::MatchRatioFamily family;
  mbi::TablePrinter table({"avg_tx_size", "inverted_%tx", "inverted_%pages",
                           "sigtable_%tx (K=15)"});
  for (double avg_size : {5.0, 7.0, 10.0, 12.0, 15.0}) {
    mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
        avg_size, 6.0, static_cast<uint64_t>(flags.seed)));
    mbi::TransactionDatabase db = generator.GenerateDatabase(size);
    std::vector<mbi::Transaction> targets =
        generator.GenerateQueries(static_cast<uint64_t>(flags.queries));

    mbi::InvertedIndex inverted(&db);
    mbi::SignatureTable sig_table = mbi::bench::BuildTable(db, 15);
    mbi::BranchAndBoundEngine engine(&db, &sig_table);

    double tx_fraction = 0.0, page_fraction = 0.0, sig_fraction = 0.0;
    for (const mbi::Transaction& target : targets) {
      mbi::InvertedIndex::Result result =
          inverted.FindKNearest(target, family, 1);
      tx_fraction += result.accessed_fraction;
      page_fraction += static_cast<double>(result.pages_touched) /
                       static_cast<double>(result.pages_total);
      sig_fraction +=
          engine.FindNearest(target, family).stats.AccessedFraction();
    }
    double n = static_cast<double>(targets.size());
    table.AddRow({mbi::TablePrinter::Format(avg_size, 0),
                  mbi::TablePrinter::Format(100.0 * tx_fraction / n, 2),
                  mbi::TablePrinter::Format(100.0 * page_fraction / n, 2),
                  mbi::TablePrinter::Format(100.0 * sig_fraction / n, 2)});
  }
  std::printf("access volume per nearest-neighbour query:\n");
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
