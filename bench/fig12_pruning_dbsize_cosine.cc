// Reproduces paper Figure 12: pruning efficiency vs database size for the
// cosine similarity function, T10.I6.Dx, K = 13/14/15.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunPruningVsDbSize("Figure 12", "cosine", argc, argv);
}
