// Reproduces paper Figure 13: accuracy vs early-termination level for the
// cosine similarity function, T10.I6.D800K, K = 13/14/15.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTermination("Figure 13", "cosine", argc,
                                              argv);
}
