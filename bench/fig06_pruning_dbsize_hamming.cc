// Reproduces paper Figure 6: pruning efficiency vs database size for the
// Hamming distance similarity function (f = 1/y), K = 13/14/15, T10.I6.Dx.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunPruningVsDbSize("Figure 6", "hamming", argc, argv);
}
