// Perf-regression smoke harness for the query hot path.
//
// Every scenario is measured twice against the same data and must return
// bit-identical results (oracle_equivalence_test.cc proves that):
//
//   *_Before  — the frozen pre-overhaul implementation
//               (FindKNearest*Reference: full entry sort, fresh allocations
//               per query, merge-scan candidate kernel; batch mode spawning
//               a pool per call),
//   *_After   — the overhauled path (lazy heap ordering, reused
//               QueryContext, packed-bitmap kernel; batch mode on a
//               caller-owned pool).
//
// Run from the repo root with no arguments to (re)generate BENCH_core.json:
//
//   ./build/bench/perf_smoke
//
// CI runs it with --benchmark_min_time=0.05 as a build-and-run smoke test
// and uploads the JSON; numbers are recorded, not gated.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_env.h"
#include "common/harness.h"
#include "core/batch_query.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "core/query_budget.h"
#include "txn/packed_target.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

/// One shared dataset + index for every benchmark: T10-style baskets over a
/// 1000-item universe, cardinality-11 signatures (a well-populated
/// directory, so entry ordering is a visible share of query cost).
struct SharedData {
  TransactionDatabase db;
  std::vector<Transaction> queries;
  // Must be declared after db/queries: its initializer populates both.
  SignatureTable table;

  static const SharedData& Get() {
    static const SharedData& instance = *new SharedData();
    return instance;
  }

 private:
  SharedData() : db(1000), table([this] {
    QuestGeneratorConfig config;
    config.universe_size = 1000;
    config.num_large_itemsets = 2000;
    config.avg_itemset_size = 6.0;
    config.avg_transaction_size = 10.0;
    config.seed = 42;
    QuestGenerator generator(config);
    db = generator.GenerateDatabase(50'000);
    queries = generator.GenerateQueries(64);
    IndexBuildConfig build;
    build.clustering.target_cardinality = 11;
    return BuildIndex(db, build);
  }()) {}
};

// --- Single-query latency: repeated k-NN queries, the context-reuse micro
// path the overhaul targets. "Before" pays the full entry sort and fresh
// allocations on every call. ---

void BM_SingleQuery_Before(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  BranchAndBoundEngine engine(&data.db, &data.table);
  MatchRatioFamily family;
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.FindKNearestReference(
        data.queries[i % data.queries.size()], family, k));
    ++i;
  }
}
BENCHMARK(BM_SingleQuery_Before)->Arg(1)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_SingleQuery_After(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  BranchAndBoundEngine engine(&data.db, &data.table);
  MatchRatioFamily family;
  const auto k = static_cast<size_t>(state.range(0));
  QueryContext context;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.FindKNearest(
        data.queries[i % data.queries.size()], family, k, {}, &context));
    ++i;
  }
}
BENCHMARK(BM_SingleQuery_After)->Arg(1)->Arg(10)->Unit(benchmark::kMicrosecond);

// --- Batch throughput: 64 queries per call. "Before" mirrors the old
// FindKNearestBatch, which constructed a ThreadPool per call and ran every
// query through reference-path allocations; "after" reuses one caller-owned
// pool and per-shard contexts. ---

void BM_BatchThroughput_Before(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  BranchAndBoundEngine engine(&data.db, &data.table);
  MatchRatioFamily family;
  for (auto _ : state) {
    ThreadPool pool(4);  // The old per-call spawn, made explicit.
    std::vector<NearestNeighborResult> results(data.queries.size());
    for (size_t i = 0; i < data.queries.size(); ++i) {
      pool.Submit([&, i] {
        results[i] = engine.FindKNearestReference(data.queries[i], family, 10);
      });
    }
    pool.Wait();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.queries.size()));
}
BENCHMARK(BM_BatchThroughput_Before)->Unit(benchmark::kMillisecond);

void BM_BatchThroughput_After(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  BranchAndBoundEngine engine(&data.db, &data.table);
  MatchRatioFamily family;
  ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindKNearestBatch(engine, data.queries, family,
                                               10, {}, /*num_threads=*/0,
                                               &pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.queries.size()));
}
BENCHMARK(BM_BatchThroughput_After)->Unit(benchmark::kMillisecond);

// --- Metrics overhead: the same steady-state k-NN hot path through the
// SignatureTableEngine front end, with instrumentation disabled vs enabled.
// CI gates MetricsOn/MetricsOff at < 3% on the median-of-repetitions
// (tools/check_metrics_overhead.py); the On variant also exports
// metric-derived counters into BENCH_core.json so the recorded numbers can
// be cross-checked against the registry. ---

void BM_SingleQuery_MetricsOff(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  SignatureTableEngine engine(&data.db);
  engine.AdoptTable(data.table);
  MatchRatioFamily family;
  QueryContext context;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.FindKNearest(
        data.queries[i % data.queries.size()], family, 10, {}, &context));
    ++i;
  }
}
BENCHMARK(BM_SingleQuery_MetricsOff)->Unit(benchmark::kMicrosecond);

void BM_SingleQuery_MetricsOn(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  SignatureTableEngine engine(&data.db);
  engine.AdoptTable(data.table);
  MetricsRegistry registry;
  engine.set_metrics(&registry);
  MatchRatioFamily family;
  QueryContext context;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.FindKNearest(
        data.queries[i % data.queries.size()], family, 10, {}, &context));
    ++i;
  }
  // Metric-derived fields for BENCH_core.json: the registry's own view of
  // the work this benchmark did (averaged per iteration by kAvgIterations).
  const Counter* queries = registry.FindCounter("mbi.engine.query.knn");
  const Counter* pages = registry.FindCounter("mbi.engine.io.pages_read");
  const Counter* evaluated =
      registry.FindCounter("mbi.engine.transactions.evaluated");
  const LatencyHistogram* latency =
      registry.FindHistogram("mbi.engine.latency.knn");
  state.counters["metric_queries"] = benchmark::Counter(
      static_cast<double>(queries->value()), benchmark::Counter::kAvgIterations);
  state.counters["metric_pages_read"] = benchmark::Counter(
      static_cast<double>(pages->value()), benchmark::Counter::kAvgIterations);
  state.counters["metric_txs_evaluated"] = benchmark::Counter(
      static_cast<double>(evaluated->value()),
      benchmark::Counter::kAvgIterations);
  state.counters["metric_p95_us"] =
      benchmark::Counter(latency->GetSnapshot().Quantile(0.95));
}
BENCHMARK(BM_SingleQuery_MetricsOn)->Unit(benchmark::kMicrosecond);

// --- Candidate kernel: score one target against the whole database,
// merge-scan vs packed-bitmap probing. ---

void BM_CandidateKernel_Before(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  const Transaction& target = data.queries[0];
  for (auto _ : state) {
    size_t total = 0;
    for (TransactionId id = 0; id < data.db.size(); ++id) {
      size_t match = 0, hamming = 0;
      MatchAndHamming(target, data.db.Get(id), &match, &hamming);
      total += match + hamming;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.db.size()));
}
BENCHMARK(BM_CandidateKernel_Before)->Unit(benchmark::kMillisecond);

void BM_CandidateKernel_After(benchmark::State& state) {
  const SharedData& data = SharedData::Get();
  PackedTarget packed;
  packed.Assign(data.queries[0], data.db.universe_size());
  for (auto _ : state) {
    size_t total = 0;
    for (TransactionId id = 0; id < data.db.size(); ++id) {
      size_t match = 0, hamming = 0;
      packed.MatchAndHamming(data.db.Get(id), &match, &hamming);
      total += match + hamming;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.db.size()));
}
BENCHMARK(BM_CandidateKernel_After)->Unit(benchmark::kMillisecond);

// --- Overload sweep: latency and answer quality as the per-query deadline
// tightens. Hand-rolled (google-benchmark owns one --benchmark_out file per
// process, and this sweep wants its own BENCH_overload.json): for each
// deadline the 64 shared queries are replayed through a warm QueryContext,
// recording p50/p99 latency, the fraction still answered exactly, top-k
// overlap with the unbudgeted answer (the quality-vs-budget curve), and how
// much of the directory the cut-off queries managed to scan. ---

void RunDeadlineSweep(const char* out_path) {
  const SharedData& data = SharedData::Get();
  BranchAndBoundEngine engine(&data.db, &data.table);
  MatchRatioFamily family;
  constexpr size_t kK = 10;
  constexpr int kRounds = 4;  // 4 x 64 queries per sweep point

  // Unbudgeted ground truth, once per target.
  std::vector<NearestNeighborResult> full;
  full.reserve(data.queries.size());
  for (const Transaction& target : data.queries) {
    full.push_back(engine.FindKNearest(target, family, kK));
  }

  // -1 encodes "no deadline" (the quality baseline and latency floor).
  const double deadlines_us[] = {-1.0, 2000.0, 500.0, 200.0, 100.0, 50.0,
                                 20.0};
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path);
    return;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"mbi_build_type\": \"%s\",\n", MBI_BENCH_BUILD_TYPE);
  std::fprintf(out, "    \"mbi_kernel_isa\": \"%s\",\n",
               kernel::IsaName(kernel::ActiveIsa()));
  std::fprintf(out, "    \"queries_per_point\": %zu,\n",
               data.queries.size() * kRounds);
  std::fprintf(out, "    \"k\": %zu\n  },\n", kK);
  std::fprintf(out, "  \"deadline_sweep\": [\n");

  bool first_row = true;
  for (double deadline_us : deadlines_us) {
    std::vector<double> latencies_us;
    latencies_us.reserve(data.queries.size() * kRounds);
    QueryContext context;
    NearestNeighborResult result;
    size_t exact = 0, deadline_cut = 0;
    double overlap_sum = 0.0, scanned_fraction_sum = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < data.queries.size(); ++i) {
        SearchOptions options;
        if (deadline_us > 0.0) {
          options.budget =
              QueryBudget::WithDeadlineAfterMs(deadline_us / 1000.0);
        }
        Stopwatch timer;
        engine.FindKNearest(data.queries[i], family, kK, options, &context,
                            &result);
        latencies_us.push_back(timer.ElapsedMillis() * 1000.0);
        exact += result.stats.is_exact;
        deadline_cut += result.stats.termination == QueryTermination::kDeadline;
        size_t hits = 0;
        for (const Neighbor& neighbor : result.neighbors) {
          for (const Neighbor& truth : full[i].neighbors) {
            if (neighbor.id == truth.id) {
              ++hits;
              break;
            }
          }
        }
        overlap_sum += full[i].neighbors.empty()
                           ? 1.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(full[i].neighbors.size());
        scanned_fraction_sum +=
            result.stats.entries_total == 0
                ? 1.0
                : static_cast<double>(result.stats.entries_scanned) /
                      static_cast<double>(result.stats.entries_total);
      }
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t n = latencies_us.size();
    auto quantile = [&](double q) {
      return latencies_us[static_cast<size_t>(q * static_cast<double>(n - 1))];
    };
    const double count = static_cast<double>(n);
    std::fprintf(out, "%s    {\"deadline_us\": %.0f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"exact_fraction\": %.4f, "
                 "\"mean_topk_overlap\": %.4f, "
                 "\"mean_entries_scanned_fraction\": %.4f, "
                 "\"deadline_cut\": %zu}",
                 first_row ? "" : ",\n", deadline_us, quantile(0.5),
                 quantile(0.99), static_cast<double>(exact) / count,
                 overlap_sum / count, scanned_fraction_sum / count,
                 deadline_cut);
    first_row = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "perf_smoke: wrote deadline sweep to %s\n", out_path);
}

}  // namespace
}  // namespace mbi

/// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_core.json
/// (JSON format) so a bare `./build/bench/perf_smoke` from the repo root
/// regenerates the committed numbers. Any explicit --benchmark_out wins.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_core.json";
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  // Committed-numbers discipline: refuse (or loudly mark, with
  // MBI_ALLOW_DEBUG_BENCH=1) non-Release builds, stamp build + dispatched-ISA
  // provenance into the JSON context, and pin to one CPU with the dataset
  // paged in before any timed section (common/bench_env.h, common/harness.h).
  mbi::bench::RequireReleaseBuild("perf_smoke");
  mbi::bench::StampBuildContext();
  const int cpu = mbi::bench::PinBenchmarkThread();
  benchmark::AddCustomContext("mbi_pinned_cpu", std::to_string(cpu));
  benchmark::AddCustomContext(
      "mbi_warm_checksum",
      std::to_string(mbi::bench::WarmDatabase(mbi::SharedData::Get().db)));
  benchmark::RunSpecifiedBenchmarks();
  // The overload sweep writes its own JSON (google-benchmark owns the
  // --benchmark_out file). MBI_OVERLOAD_OUT overrides the path; an empty
  // value skips the sweep.
  const char* overload_out = std::getenv("MBI_OVERLOAD_OUT");
  if (overload_out == nullptr) overload_out = "BENCH_overload.json";
  if (overload_out[0] != '\0') mbi::RunDeadlineSweep(overload_out);
  benchmark::Shutdown();
  return 0;
}
