// Per-ISA microbenchmarks for the runtime-dispatched SIMD kernels.
//
// Every kernel benchmark is registered once per ISA the host actually
// supports (KernelsFor(isa) != nullptr), so one run of this binary produces
// directly comparable scalar/AVX2/AVX-512/NEON rows on the same data:
//
//   MatchRowsStream/<isa>/w<N> — AND+popcount match over 4096 contiguous
//       blocked-layout rows of N words (streaming form; bytes/second is the
//       number to compare against memory bandwidth);
//   MatchRowsGather/<isa>/w<N> — the same kernel through a shuffled id list
//       (the branch-and-bound entry shape; exercises the software prefetch);
//   BoundsBatch/<isa>        — the K=15 per-entry bound computation over
//       32768 supercoordinates (the signature-directory scan shape);
//   PackedBatch/<isa>        — end-to-end PackedTarget::MatchAndHammingRows
//       over a QUEST T10 database (dense band + tail probe + Hamming);
//   BandedLayout/{banded,dense} — an 8192-item Zipf universe scored through
//       a 1024-bit frequent-item band vs a full-width dense bitmap: the
//       band split's bandwidth saving, measured not asserted.
//
// A bare run from the repo root writes BENCH_kernels.json; the binary
// refuses non-Release builds (see common/bench_env.h) and pins itself to
// one CPU before measuring.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "common/bench_env.h"
#include "common/harness.h"
#include "core/bounds.h"
#include "gen/quest_generator.h"
#include "kernel/aligned_buffer.h"
#include "kernel/dispatch.h"
#include "kernel/kernels.h"
#include "txn/candidate_layout.h"
#include "txn/packed_target.h"

namespace mbi {
namespace {

using kernel::Isa;
using kernel::KernelOps;

// --- Raw match kernel over synthetic blocked rows. ---

struct RawMatchData {
  size_t rows = 4096;
  size_t words;
  size_t stride;
  kernel::AlignedWordBuffer pool;
  kernel::AlignedWordBuffer target;
  std::vector<uint32_t> ids;            // Shuffled, for the gather form.
  std::vector<uint32_t> out;

  explicit RawMatchData(size_t words_in)
      : words(words_in),
        stride((words_in + 7) & ~size_t{7}),
        pool(stride * rows),
        target(words_in),
        ids(rows),
        out(rows) {
    std::mt19937_64 rng(words_in * 7919 + 1);
    for (size_t i = 0; i < stride * rows; ++i) pool.data()[i] = rng();
    for (size_t i = 0; i < words; ++i) target.data()[i] = rng();
    std::iota(ids.begin(), ids.end(), 0u);
    std::shuffle(ids.begin(), ids.end(), rng);
  }

  static RawMatchData& For(size_t words) {
    static RawMatchData w4(4), w8(8), w16(16);
    return words == 4 ? w4 : words == 8 ? w8 : w16;
  }
};

void BM_MatchRowsStream(benchmark::State& state, const KernelOps* ops,
                        size_t words) {
  RawMatchData& data = RawMatchData::For(words);
  for (auto _ : state) {
    ops->match_rows(data.target.data(), data.pool.data(), data.stride,
                    data.words, /*ids=*/nullptr, data.rows, data.out.data());
    benchmark::DoNotOptimize(data.out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.rows * data.words * 8));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.rows));
}

void BM_MatchRowsGather(benchmark::State& state, const KernelOps* ops,
                        size_t words) {
  RawMatchData& data = RawMatchData::For(words);
  for (auto _ : state) {
    ops->match_rows(data.target.data(), data.pool.data(), data.stride,
                    data.words, data.ids.data(), data.rows, data.out.data());
    benchmark::DoNotOptimize(data.out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.rows * data.words * 8));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.rows));
}

// --- Raw bounds kernel over synthetic signature tables. ---

struct BoundsData {
  static constexpr uint32_t kCardinality = 15;
  static constexpr size_t kCount = 32768;
  std::vector<int32_t> d0, d1, m0, m1;
  std::vector<uint32_t> coords;
  std::vector<int32_t> dist_out, match_out;

  BoundsData()
      : d0(kCardinality), d1(kCardinality), m0(kCardinality), m1(kCardinality),
        coords(kCount), dist_out(kCount), match_out(kCount) {
    std::mt19937_64 rng(5);
    for (uint32_t j = 0; j < kCardinality; ++j) {
      d0[j] = static_cast<int32_t>(rng() % 8);
      d1[j] = static_cast<int32_t>(rng() % 8);
      m0[j] = static_cast<int32_t>(rng() % 8);
      m1[j] = static_cast<int32_t>(rng() % 8);
    }
    for (uint32_t& c : coords) c = static_cast<uint32_t>(rng());
  }

  static BoundsData& Get() {
    static BoundsData data;
    return data;
  }
};

void BM_BoundsBatch(benchmark::State& state, const KernelOps* ops) {
  BoundsData& data = BoundsData::Get();
  for (auto _ : state) {
    ops->bounds_batch(data.coords.data(), data.coords.size(),
                      BoundsData::kCardinality, data.d0.data(), data.d1.data(),
                      data.m0.data(), data.m1.data(), data.dist_out.data(),
                      data.match_out.data());
    benchmark::DoNotOptimize(data.dist_out.data());
    benchmark::DoNotOptimize(data.match_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.coords.size()));
}

// --- End-to-end PackedTarget batch on QUEST data. ---

struct QuestData {
  TransactionDatabase db;
  std::vector<Transaction> queries;
  CandidateLayout layout;

  QuestData() : db(1000) {
    QuestGeneratorConfig config;
    config.universe_size = 1000;
    config.num_large_itemsets = 2000;
    config.avg_itemset_size = 6.0;
    config.avg_transaction_size = 10.0;
    config.seed = 42;
    QuestGenerator generator(config);
    db = generator.GenerateDatabase(20'000);
    queries = generator.GenerateQueries(8);
    layout = CandidateLayout::Build(db);
  }

  static QuestData& Get() {
    static QuestData data;
    return data;
  }
};

void BM_PackedBatch(benchmark::State& state, Isa isa) {
  QuestData& data = QuestData::Get();
  kernel::ForceIsa(isa);
  PackedTarget packed;
  std::vector<uint32_t> match(data.db.size()), hamming(data.db.size());
  size_t q = 0;
  for (auto _ : state) {
    packed.Assign(data.queries[q % data.queries.size()],
                  data.db.universe_size(), &data.layout);
    packed.MatchAndHammingRows(0, data.db.size(), match.data(),
                               hamming.data());
    benchmark::DoNotOptimize(match.data());
    benchmark::DoNotOptimize(hamming.data());
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.db.size()));
  kernel::ResetIsaForTesting();
}

/// The pre-kernel per-candidate probe on the same data — the "before" row
/// the PackedBatch/<isa> rows are read against.
void BM_PackedProbeLegacy(benchmark::State& state) {
  QuestData& data = QuestData::Get();
  PackedTarget packed;
  size_t q = 0;
  for (auto _ : state) {
    packed.Assign(data.queries[q % data.queries.size()],
                  data.db.universe_size());
    uint64_t total = 0;
    for (TransactionId id = 0; id < data.db.size(); ++id) {
      size_t match = 0, hamming = 0;
      packed.MatchAndHamming(data.db.Get(id), &match, &hamming);
      total += match + hamming;
    }
    benchmark::DoNotOptimize(total);
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.db.size()));
}

// --- Band split vs full-width dense rows on a wide Zipf universe. ---

struct BandedData {
  static constexpr uint32_t kUniverse = 8192;
  TransactionDatabase db;
  Transaction target;
  CandidateLayout banded;  // 1024-bit frequent-item band + sparse tails.
  CandidateLayout dense;   // Full 8192-bit rows, no tails.

  BandedData() : db(kUniverse) {
    std::mt19937_64 rng(99);
    for (size_t i = 0; i < 20'000; ++i) {
      std::vector<ItemId> items;
      const size_t len = 10 + rng() % 20;
      for (size_t j = 0; j < len; ++j) {
        // Zipf-ish: most draws land in a small frequent head.
        const uint64_t u = rng() % kUniverse;
        items.push_back(static_cast<ItemId>((u * u) / kUniverse));
      }
      db.Add(Transaction(std::move(items)));
    }
    {
      std::vector<ItemId> items;
      for (size_t j = 0; j < 12; ++j) {
        const uint64_t u = rng() % kUniverse;
        items.push_back(static_cast<ItemId>((u * u) / kUniverse));
      }
      target = Transaction(std::move(items));
    }
    CandidateLayoutConfig banded_config;
    banded_config.max_dense_bits = 1024;
    banded = CandidateLayout::Build(db, banded_config);
    CandidateLayoutConfig dense_config;
    dense_config.max_dense_bits = kUniverse;
    dense = CandidateLayout::Build(db, dense_config);
  }

  static BandedData& Get() {
    static BandedData data;
    return data;
  }
};

void BM_BandedLayout(benchmark::State& state, const CandidateLayout* layout) {
  BandedData& data = BandedData::Get();
  PackedTarget packed;
  packed.Assign(data.target, BandedData::kUniverse, layout);
  std::vector<uint32_t> match(data.db.size()), hamming(data.db.size());
  for (auto _ : state) {
    packed.MatchAndHammingRows(0, data.db.size(), match.data(),
                               hamming.data());
    benchmark::DoNotOptimize(match.data());
    benchmark::DoNotOptimize(hamming.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.db.size()));
}

void RegisterAll() {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    const KernelOps* ops = kernel::KernelsFor(isa);
    if (ops == nullptr) continue;
    const std::string name = kernel::IsaName(isa);
    for (size_t words : {size_t{4}, size_t{8}, size_t{16}}) {
      benchmark::RegisterBenchmark(
          ("MatchRowsStream/" + name + "/w" + std::to_string(words)).c_str(),
          BM_MatchRowsStream, ops, words)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          ("MatchRowsGather/" + name + "/w" + std::to_string(words)).c_str(),
          BM_MatchRowsGather, ops, words)
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(("BoundsBatch/" + name).c_str(),
                                 BM_BoundsBatch, ops)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("PackedBatch/" + name).c_str(),
                                 BM_PackedBatch, isa)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark("PackedProbeLegacy", BM_PackedProbeLegacy)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BandedLayout/banded", BM_BandedLayout,
                               &BandedData::Get().banded)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BandedLayout/dense", BM_BandedLayout,
                               &BandedData::Get().dense)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace mbi

/// Like perf_smoke: a bare run writes BENCH_kernels.json (explicit
/// --benchmark_out wins); refuses non-Release builds; pins one CPU and warms
/// the fixture data before any timed section.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  mbi::bench::RequireReleaseBuild("micro_kernels");
  mbi::bench::StampBuildContext();
  const int cpu = mbi::bench::PinBenchmarkThread();
  benchmark::AddCustomContext("mbi_pinned_cpu", std::to_string(cpu));
  benchmark::AddCustomContext(
      "mbi_warm_checksum",
      std::to_string(mbi::bench::WarmDatabase(mbi::QuestData::Get().db) +
                     mbi::bench::WarmDatabase(mbi::BandedData::Get().db)));
  mbi::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
