// Reproduces paper Figure 10: accuracy vs early-termination level for the
// match/hamming-distance-ratio similarity function, T10.I6.D800K.
#include "common/harness.h"

int main(int argc, char** argv) {
  return mbi::bench::RunAccuracyVsTermination("Figure 10", "match_ratio", argc,
                                              argv);
}
