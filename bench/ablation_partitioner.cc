// Ablation: correlation-aware single-linkage signatures (paper §3.1) vs a
// correlation-blind mass-balanced partitioner, at activation thresholds
// r = 1 and r = 2. Quantifies how much the clustering step contributes: at
// r = 1 the partitions are often comparable, while at r = 2 the blind
// partition collapses most transactions onto few supercoordinates.

#include <cstdio>

#include "common/harness.h"
#include "core/index_builder.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  mbi::bench::HarnessFlags flags;
  if (!mbi::bench::HarnessFlags::Parse(
          "Ablation: single-linkage vs balanced signatures", argc, argv,
          &flags)) {
    return 0;
  }
  const uint64_t size = 200'000 / static_cast<uint64_t>(flags.scale);
  mbi::bench::PrintBanner(
      "Ablation", "single-linkage vs mass-balanced signatures (K = 13)",
      "T10.I6.D" + std::to_string(size), flags);

  mbi::QuestGenerator generator(mbi::bench::PaperGeneratorConfig(
      10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  mbi::TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<mbi::Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  mbi::InverseHammingFamily family;

  mbi::TablePrinter table(
      {"partitioner", "r", "occupied_entries", "pruning_%"});
  for (bool balanced : {false, true}) {
    for (int r : {1, 2}) {
      mbi::IndexBuildConfig build;
      build.clustering.target_cardinality = 13;
      build.table.activation_threshold = r;
      build.use_balanced_partitioner = balanced;
      mbi::SignatureTable sig_table = mbi::BuildIndex(db, build);
      mbi::BranchAndBoundEngine engine(&db, &sig_table);
      table.AddRow(
          {balanced ? "balanced" : "single_linkage",
           mbi::TablePrinter::Format(static_cast<int64_t>(r)),
           mbi::TablePrinter::Format(
               static_cast<int64_t>(sig_table.entries().size())),
           mbi::TablePrinter::Format(
               mbi::bench::AvgPruningEfficiency(engine, targets, family),
               2)});
    }
  }
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  return 0;
}
