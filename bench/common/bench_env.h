#ifndef MBI_BENCH_COMMON_BENCH_ENV_H_
#define MBI_BENCH_COMMON_BENCH_ENV_H_

// Build-provenance stamping and the Release gate for the google-benchmark
// harnesses (perf_smoke, micro_kernels).
//
// A benchmark JSON whose numbers came from a -O0 assert-laden build is worse
// than no JSON: it gets committed, compared against, and silently poisons
// every later "X is N% faster" claim. Two defenses, both here:
//
//   * StampBuildContext() writes the build type, compiler, flags, assertion
//     state, and the runtime-dispatched kernel ISA into the JSON `context`
//     block, so every BENCH_*.json carries enough provenance to be audited
//     after the fact;
//   * RequireReleaseBuild() refuses to run a non-Release binary outright.
//     MBI_ALLOW_DEBUG_BENCH=1 overrides for local debugging, and the run is
//     loudly marked (stderr + a `mbi_non_release_run` context key).
//
// Header-only because only benchmark binaries may depend on
// <benchmark/benchmark.h>; the common harness library stays free of it.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "kernel/dispatch.h"

// The CMakeLists of bench/ passes the configured build type and the exact
// flag string; a binary built outside that scaffolding stamps "unknown".
#ifndef MBI_BENCH_BUILD_TYPE
#define MBI_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef MBI_BENCH_CXX_FLAGS
#define MBI_BENCH_CXX_FLAGS "unknown"
#endif

namespace mbi::bench {

inline bool IsReleaseBuild() {
#ifdef NDEBUG
  // NDEBUG alone is not enough (RelWithDebInfo sets it too, at -O2 that is
  // fine; but a custom build type could set NDEBUG at -O0), so also require
  // an optimized configured type.
  const char* type = MBI_BENCH_BUILD_TYPE;
  return (type[0] == 'R' || type[0] == 'r') ||  // Release, RelWithDebInfo...
         (type[0] == 'M' || type[0] == 'm');    // MinSizeRel
#else
  return false;
#endif
}

/// Stamps build + dispatch provenance into the benchmark JSON `context`.
/// Call after benchmark::Initialize (AddCustomContext needs it).
inline void StampBuildContext() {
  benchmark::AddCustomContext("mbi_build_type", MBI_BENCH_BUILD_TYPE);
  benchmark::AddCustomContext("mbi_cxx_flags", MBI_BENCH_CXX_FLAGS);
#if defined(__clang__)
  benchmark::AddCustomContext("mbi_compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  benchmark::AddCustomContext("mbi_compiler", "gcc " __VERSION__);
#else
  benchmark::AddCustomContext("mbi_compiler", "unknown");
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("mbi_assertions", "off");
#else
  benchmark::AddCustomContext("mbi_assertions", "on");
#endif
  benchmark::AddCustomContext("mbi_kernel_isa",
                              kernel::IsaName(kernel::ActiveIsa()));
  benchmark::AddCustomContext(
      "mbi_kernel_isa_widest",
      kernel::IsaName(kernel::WidestSupportedIsa()));
}

/// Exits (code 1) when this binary is not an optimized build, unless
/// MBI_ALLOW_DEBUG_BENCH is set — then the run proceeds but is marked in
/// both stderr and the JSON context. Call after benchmark::Initialize.
inline void RequireReleaseBuild(const char* harness_name) {
  if (IsReleaseBuild()) return;
  if (std::getenv("MBI_ALLOW_DEBUG_BENCH") != nullptr) {
    std::fprintf(stderr,
                 "%s: WARNING: non-Release build (%s); numbers are "
                 "meaningless for comparison and the JSON is marked "
                 "mbi_non_release_run\n",
                 harness_name, MBI_BENCH_BUILD_TYPE);
    benchmark::AddCustomContext("mbi_non_release_run", "true");
    return;
  }
  std::fprintf(stderr,
               "%s: refusing to benchmark a non-Release build (%s). "
               "Configure with -DCMAKE_BUILD_TYPE=Release, or set "
               "MBI_ALLOW_DEBUG_BENCH=1 to run anyway (marked in the "
               "JSON).\n",
               harness_name, MBI_BENCH_BUILD_TYPE);
  std::exit(1);
}

}  // namespace mbi::bench

#endif  // MBI_BENCH_COMMON_BENCH_ENV_H_
