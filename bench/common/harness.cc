#include "common/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#ifdef __linux__
#include <sched.h>
#endif

#include "util/flags.h"
#include "util/macros.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace mbi::bench {
namespace {

constexpr uint64_t kPaperDbSize = 800'000;
const std::vector<uint64_t> kPaperDbSizes = {100'000, 200'000, 400'000,
                                             600'000, 800'000};
const std::vector<uint32_t> kPaperCardinalities = {13, 14, 15};
const std::vector<double> kTerminationLevels = {0.002, 0.005, 0.01, 0.015,
                                                0.02};
const std::vector<double> kTransactionSizes = {5, 7, 10, 12, 15};

bool SimilarityEqual(double a, double b) {
  return (std::isinf(a) && std::isinf(b) && std::signbit(a) == std::signbit(b))
             ? true
             : a == b;
}

}  // namespace

bool HarnessFlags::Parse(const std::string& description, int argc, char** argv,
                         HarnessFlags* flags) {
  FlagParser parser(description);
  parser.AddInt64("scale", 1,
                  "divide the paper's database sizes by this factor "
                  "(e.g. 8 turns 800K into 100K) for quick runs",
                  &flags->scale);
  parser.AddInt64("queries", 100, "query targets per measurement point",
                  &flags->queries);
  parser.AddInt64("seed", 42, "generator seed", &flags->seed);
  parser.AddBool("csv", false, "emit CSV instead of an aligned table",
                 &flags->csv);
  if (!parser.Parse(argc, argv)) return false;
  MBI_CHECK_MSG(flags->scale >= 1, "--scale must be >= 1");
  MBI_CHECK_MSG(flags->queries >= 1, "--queries must be >= 1");
  return true;
}

int PinBenchmarkThread() {
#ifdef __linux__
  int cpu = -1;
  if (const char* env = std::getenv("MBI_BENCH_CPU")) {
    cpu = std::atoi(env);
  } else {
    // First CPU we are already allowed on (respects container cpusets).
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return -1;
    for (size_t c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &allowed)) {
        cpu = static_cast<int>(c);
        break;
      }
    }
  }
  if (cpu < 0) return -1;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<size_t>(cpu), &mask);
  if (sched_setaffinity(0, sizeof(mask), &mask) != 0) return -1;
  return cpu;
#else
  return -1;
#endif
}

uint64_t WarmDatabase(const TransactionDatabase& database) {
  uint64_t checksum = 0;
  for (TransactionId id = 0; id < database.size(); ++id) {
    for (ItemId item : database.Get(id).items()) checksum += item;
  }
  return checksum;
}

QuestGeneratorConfig PaperGeneratorConfig(double avg_transaction_size,
                                          double avg_itemset_size,
                                          uint64_t seed) {
  QuestGeneratorConfig config;
  config.universe_size = 1000;
  config.num_large_itemsets = 2000;
  config.avg_itemset_size = avg_itemset_size;
  config.avg_transaction_size = avg_transaction_size;
  config.seed = seed;
  return config;
}

TransactionDatabase Prefix(const TransactionDatabase& database, uint64_t n) {
  MBI_CHECK(n <= database.size());
  TransactionDatabase prefix(database.universe_size());
  for (TransactionId id = 0; id < n; ++id) prefix.Add(database.Get(id));
  return prefix;
}

SignatureTable BuildTable(const TransactionDatabase& database, uint32_t k,
                          int activation_threshold) {
  IndexBuildConfig build;
  build.clustering.target_cardinality = k;
  build.table.activation_threshold = activation_threshold;
  return BuildIndex(database, build);
}

double AvgPruningEfficiency(const BranchAndBoundEngine& engine,
                            const std::vector<Transaction>& targets,
                            const SimilarityFamily& family) {
  double total = 0.0;
  for (const Transaction& target : targets) {
    total += engine.FindNearest(target, family)
                 .stats.PruningEfficiencyPercent();
  }
  return total / static_cast<double>(targets.size());
}

double AccuracyAtTermination(const BranchAndBoundEngine& engine,
                             const std::vector<Transaction>& targets,
                             const SimilarityFamily& family,
                             double access_fraction,
                             EntrySortOrder sort_order) {
  return AccuracyAtTerminationLevels(engine, targets, family,
                                     {access_fraction}, sort_order)[0];
}

std::vector<double> AccuracyAtTerminationLevels(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    const std::vector<double>& access_fractions, EntrySortOrder sort_order) {
  std::vector<int> found(access_fractions.size(), 0);
  for (const Transaction& target : targets) {
    NearestNeighborResult exact = engine.FindNearest(target, family);
    for (size_t level = 0; level < access_fractions.size(); ++level) {
      SearchOptions options;
      options.max_access_fraction = access_fractions[level];
      options.sort_order = sort_order;
      NearestNeighborResult fast = engine.FindNearest(target, family, options);
      found[level] += SimilarityEqual(fast.neighbors[0].similarity,
                                      exact.neighbors[0].similarity);
    }
  }
  std::vector<double> accuracy(access_fractions.size());
  for (size_t level = 0; level < access_fractions.size(); ++level) {
    accuracy[level] =
        100.0 * found[level] / static_cast<double>(targets.size());
  }
  return accuracy;
}

void PrintBanner(const std::string& figure, const std::string& what,
                 const std::string& dataset, const HarnessFlags& flags) {
  std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
  std::printf(
      "dataset %s | universe 1000 items, L=2000 itemsets | seed %lld | "
      "%lld queries/point | scale 1/%lld\n\n",
      dataset.c_str(), static_cast<long long>(flags.seed),
      static_cast<long long>(flags.queries),
      static_cast<long long>(flags.scale));
}

int RunPruningVsDbSize(const std::string& figure,
                       const std::string& family_name, int argc, char** argv) {
  HarnessFlags flags;
  if (!HarnessFlags::Parse(
          figure + ": pruning efficiency vs database size (" + family_name +
              ")",
          argc, argv, &flags)) {
    return 0;
  }
  auto family = MakeSimilarityFamily(family_name);
  PrintBanner(figure,
              "pruning efficiency vs database size, similarity = " +
                  family_name,
              "T10.I6.Dx", flags);

  Stopwatch timer;
  QuestGenerator generator(
      PaperGeneratorConfig(10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  const uint64_t max_size = kPaperDbSize / static_cast<uint64_t>(flags.scale);
  TransactionDatabase full = generator.GenerateDatabase(max_size);
  std::vector<Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
  std::printf("generated %llu transactions in %.1fs\n\n",
              static_cast<unsigned long long>(max_size),
              timer.ElapsedSeconds());

  TablePrinter table({"db_size", "K=13", "K=14", "K=15"});
  for (uint64_t paper_size : kPaperDbSizes) {
    uint64_t size = paper_size / static_cast<uint64_t>(flags.scale);
    TransactionDatabase db = Prefix(full, size);
    std::vector<std::string> row = {TablePrinter::Format(
        static_cast<int64_t>(size))};
    for (uint32_t k : kPaperCardinalities) {
      SignatureTable sig_table = BuildTable(db, k);
      BranchAndBoundEngine engine(&db, &sig_table);
      row.push_back(TablePrinter::Format(
          AvgPruningEfficiency(engine, targets, *family), 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("pruning efficiency (%% of transactions pruned, exact search):\n");
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  std::printf("\ntotal %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

int RunAccuracyVsTermination(const std::string& figure,
                             const std::string& family_name, int argc,
                             char** argv) {
  HarnessFlags flags;
  if (!HarnessFlags::Parse(
          figure + ": accuracy vs early-termination level (" + family_name +
              ")",
          argc, argv, &flags)) {
    return 0;
  }
  auto family = MakeSimilarityFamily(family_name);
  const uint64_t size = kPaperDbSize / static_cast<uint64_t>(flags.scale);
  PrintBanner(figure,
              "accuracy vs early termination level, similarity = " +
                  family_name,
              DatasetName(10, 6, size), flags);

  Stopwatch timer;
  QuestGenerator generator(
      PaperGeneratorConfig(10.0, 6.0, static_cast<uint64_t>(flags.seed)));
  TransactionDatabase db = generator.GenerateDatabase(size);
  std::vector<Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(flags.queries));

  TablePrinter table({"termination_%", "K=13", "K=14", "K=15"});
  std::vector<std::vector<std::string>> rows(kTerminationLevels.size());
  for (size_t level = 0; level < kTerminationLevels.size(); ++level) {
    rows[level].push_back(
        TablePrinter::Format(100.0 * kTerminationLevels[level], 1));
  }
  for (uint32_t k : kPaperCardinalities) {
    SignatureTable sig_table = BuildTable(db, k);
    BranchAndBoundEngine engine(&db, &sig_table);
    std::vector<double> accuracy = AccuracyAtTerminationLevels(
        engine, targets, *family, kTerminationLevels);
    for (size_t level = 0; level < kTerminationLevels.size(); ++level) {
      rows[level].push_back(TablePrinter::Format(accuracy[level], 1));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  std::printf("accuracy (%% of queries where the true NN was found):\n");
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  std::printf("\ntotal %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

int RunAccuracyVsTransactionSize(const std::string& figure,
                                 const std::string& family_name, int argc,
                                 char** argv) {
  HarnessFlags flags;
  if (!HarnessFlags::Parse(
          figure + ": accuracy at 2% termination vs avg transaction size (" +
              family_name + ")",
          argc, argv, &flags)) {
    return 0;
  }
  auto family = MakeSimilarityFamily(family_name);
  const uint64_t size = kPaperDbSize / static_cast<uint64_t>(flags.scale);
  PrintBanner(figure,
              "accuracy at 2% termination vs avg transaction size, "
              "similarity = " +
                  family_name,
              "Tx.I6.D" + std::to_string(size), flags);

  Stopwatch timer;
  TablePrinter table({"avg_tx_size", "K=13", "K=14", "K=15"});
  for (double avg_size : kTransactionSizes) {
    QuestGenerator generator(PaperGeneratorConfig(
        avg_size, 6.0, static_cast<uint64_t>(flags.seed)));
    TransactionDatabase db = generator.GenerateDatabase(size);
    std::vector<Transaction> targets =
        generator.GenerateQueries(static_cast<uint64_t>(flags.queries));
    std::vector<std::string> row = {TablePrinter::Format(avg_size, 0)};
    for (uint32_t k : kPaperCardinalities) {
      SignatureTable sig_table = BuildTable(db, k);
      BranchAndBoundEngine engine(&db, &sig_table);
      row.push_back(TablePrinter::Format(
          AccuracyAtTermination(engine, targets, *family, 0.02), 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("accuracy (%% of queries where the true NN was found):\n");
  flags.csv ? table.PrintCsv(stdout) : table.Print(stdout);
  std::printf("\ntotal %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace mbi::bench
