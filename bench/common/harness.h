#ifndef MBI_BENCH_COMMON_HARNESS_H_
#define MBI_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/similarity.h"
#include "gen/quest_generator.h"
#include "txn/database.h"

namespace mbi::bench {

/// Flags shared by every figure/table driver.
///
/// `scale` divides the paper's database sizes so the full harness can be
/// smoke-tested quickly (`--scale=8` turns 800K-transaction runs into 100K).
/// Measured percentages are scale-dependent only through the paper's own
/// scaling trends.
struct HarnessFlags {
  int64_t scale = 1;
  int64_t queries = 100;
  int64_t seed = 42;
  bool csv = false;

  /// Parses argv; returns false if --help was requested (caller exits 0).
  static bool Parse(const std::string& description, int argc, char** argv,
                    HarnessFlags* flags);
};

/// The paper's generator setting: |U| = 1000 items, L = 2000 maximal
/// potentially large itemsets, I = avg_itemset_size, T = avg transaction
/// size (§5).
QuestGeneratorConfig PaperGeneratorConfig(double avg_transaction_size,
                                          double avg_itemset_size, uint64_t seed);

/// Copies the first `n` transactions — the paper's Dx axis reuses one
/// distribution at several sizes.
TransactionDatabase Prefix(const TransactionDatabase& database, uint64_t n);

/// Builds a signature table at cardinality `k` (single-linkage signatures,
/// activation threshold `r`).
SignatureTable BuildTable(const TransactionDatabase& database, uint32_t k,
                          int activation_threshold = 1);

/// Average pruning efficiency (percent) over `targets` when the branch and
/// bound runs to completion (paper's pruning-efficiency metric).
double AvgPruningEfficiency(const BranchAndBoundEngine& engine,
                            const std::vector<Transaction>& targets,
                            const SimilarityFamily& family);

/// Percentage of `targets` whose early-terminated nearest neighbour has the
/// same similarity value as the true nearest neighbour (paper's accuracy
/// metric; ties count as found).
double AccuracyAtTermination(const BranchAndBoundEngine& engine,
                             const std::vector<Transaction>& targets,
                             const SimilarityFamily& family,
                             double access_fraction,
                             EntrySortOrder sort_order =
                                 EntrySortOrder::kOptimisticBound);

/// Batched variant: one accuracy value per entry of `access_fractions`,
/// computing each query's exact answer only once.
std::vector<double> AccuracyAtTerminationLevels(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    const std::vector<double>& access_fractions,
    EntrySortOrder sort_order = EntrySortOrder::kOptimisticBound);

/// Prints the standard experiment banner.
void PrintBanner(const std::string& figure, const std::string& what,
                 const std::string& dataset, const HarnessFlags& flags);

/// Pins the calling thread to one CPU so timed sections stop migrating
/// between cores mid-measurement (each migration costs cold caches and,
/// on heterogeneous parts, a different clock). The CPU defaults to the
/// first one in the current affinity mask and can be overridden with
/// MBI_BENCH_CPU=<n>. Returns the pinned CPU, or -1 when pinning is
/// unsupported/denied (the benchmark still runs, unpinned).
int PinBenchmarkThread();

/// Touches every transaction of `database` once so the timed sections
/// measure query work, not first-touch page faults on the data. Returns a
/// checksum of the visited items (forces the reads to happen).
uint64_t WarmDatabase(const TransactionDatabase& database);

/// Figure 6/9/12 driver: pruning efficiency vs database size for one
/// similarity family, K in {13, 14, 15}.
int RunPruningVsDbSize(const std::string& figure,
                       const std::string& family_name, int argc, char** argv);

/// Figure 7/10/13 driver: accuracy vs early-termination level on
/// T10.I6.D(800K/scale), K in {13, 14, 15}.
int RunAccuracyVsTermination(const std::string& figure,
                             const std::string& family_name, int argc,
                             char** argv);

/// Figure 8/11/14 driver: accuracy at 2% termination vs average transaction
/// size on Tx.I6.D(800K/scale), K in {13, 14, 15}.
int RunAccuracyVsTransactionSize(const std::string& figure,
                                 const std::string& family_name, int argc,
                                 char** argv);

}  // namespace mbi::bench

#endif  // MBI_BENCH_COMMON_HARNESS_H_
